// Protocol conformance suite: a battery of contracts every sim::Protocol
// in the library must satisfy, applied uniformly via factories. This is
// what guarantees the benches can treat protocols interchangeably.

#include <cmath>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/exact_sync.h"
#include "baselines/periodic_sync.h"
#include "baselines/two_monotonic.h"
#include "core/horizon_free.h"
#include "core/nonmonotonic_counter.h"
#include "hyz/hyz_counter.h"
#include "sim/assignment.h"
#include "streams/bernoulli.h"

namespace nmc {
namespace {

struct ProtocolSpec {
  std::string name;
  std::function<std::unique_ptr<sim::Protocol>(int k, uint64_t seed)> make;
  /// Whether the protocol accepts arbitrary values in [-1, 1] (false:
  /// monotonic/±1-only protocols get a ±1 or all-ones stream).
  bool general_values = true;
  bool monotonic_only = false;
};

std::vector<ProtocolSpec> AllProtocols() {
  std::vector<ProtocolSpec> specs;
  specs.push_back({"counter",
                   [](int k, uint64_t seed) -> std::unique_ptr<sim::Protocol> {
                     core::CounterOptions options;
                     options.epsilon = 0.2;
                     options.horizon_n = 4096;
                     options.seed = seed;
                     return std::make_unique<core::NonMonotonicCounter>(
                         k, options);
                   },
                   true, false});
  specs.push_back({"counter_drift_mode",
                   [](int k, uint64_t seed) -> std::unique_ptr<sim::Protocol> {
                     core::CounterOptions options;
                     options.epsilon = 0.2;
                     options.horizon_n = 4096;
                     options.drift_mode = core::DriftMode::kUnknownUnitDrift;
                     options.seed = seed;
                     return std::make_unique<core::NonMonotonicCounter>(
                         k, options);
                   },
                   false, false});
  specs.push_back({"horizon_free",
                   [](int k, uint64_t seed) -> std::unique_ptr<sim::Protocol> {
                     core::HorizonFreeOptions options;
                     options.counter.epsilon = 0.2;
                     options.counter.seed = seed;
                     options.initial_horizon = 512;
                     return std::make_unique<core::HorizonFreeCounter>(
                         k, options);
                   },
                   true, false});
  specs.push_back({"hyz_sampled",
                   [](int k, uint64_t seed) -> std::unique_ptr<sim::Protocol> {
                     hyz::HyzOptions options;
                     options.epsilon = 0.2;
                     options.seed = seed;
                     return std::make_unique<hyz::HyzProtocol>(k, options);
                   },
                   false, true});
  specs.push_back({"hyz_deterministic",
                   [](int k, uint64_t seed) -> std::unique_ptr<sim::Protocol> {
                     hyz::HyzOptions options;
                     options.mode = hyz::HyzMode::kDeterministic;
                     options.epsilon = 0.2;
                     options.seed = seed;
                     return std::make_unique<hyz::HyzProtocol>(k, options);
                   },
                   false, true});
  specs.push_back({"exact_sync",
                   [](int k, uint64_t) -> std::unique_ptr<sim::Protocol> {
                     return std::make_unique<baselines::ExactSyncProtocol>(k);
                   },
                   true, false});
  specs.push_back({"periodic_sync",
                   [](int k, uint64_t) -> std::unique_ptr<sim::Protocol> {
                     return std::make_unique<baselines::PeriodicSyncProtocol>(
                         k, 8);
                   },
                   true, false});
  specs.push_back({"two_monotonic",
                   [](int k, uint64_t seed) -> std::unique_ptr<sim::Protocol> {
                     return std::make_unique<baselines::TwoMonotonicProtocol>(
                         k, 0.2, 1e-6, seed);
                   },
                   false, false});
  return specs;
}

std::vector<double> StreamFor(const ProtocolSpec& spec, int64_t n,
                              uint64_t seed) {
  if (spec.monotonic_only) {
    return std::vector<double>(static_cast<size_t>(n), 1.0);
  }
  if (!spec.general_values) {
    return streams::BernoulliStream(n, 0.3, seed);  // ±1 only
  }
  return streams::FractionalIidStream(n, 0.1, 0.9, seed);
}

class ConformanceTest : public ::testing::TestWithParam<size_t> {
 protected:
  ProtocolSpec spec() const { return AllProtocols()[GetParam()]; }
};

TEST_P(ConformanceTest, ReportsNumSites) {
  const auto s = spec();
  for (int k : {1, 3, 16}) {
    auto protocol = s.make(k, 1);
    EXPECT_EQ(protocol->num_sites(), k) << s.name;
  }
}

TEST_P(ConformanceTest, EstimateValidBeforeAnyUpdate) {
  const auto s = spec();
  auto protocol = s.make(2, 1);
  EXPECT_DOUBLE_EQ(protocol->Estimate(), 0.0) << s.name;
}

TEST_P(ConformanceTest, StatsMonotoneNondecreasing) {
  const auto s = spec();
  auto protocol = s.make(3, 2);
  const auto stream = StreamFor(s, 512, 3);
  int64_t previous = protocol->stats().total();
  for (int64_t t = 0; t < 512; ++t) {
    protocol->ProcessUpdate(static_cast<int>(t % 3),
                            stream[static_cast<size_t>(t)]);
    const int64_t now = protocol->stats().total();
    ASSERT_GE(now, previous) << s.name << " t=" << t;
    previous = now;
  }
}

TEST_P(ConformanceTest, DeterministicInSeed) {
  const auto s = spec();
  auto run = [&](uint64_t seed) {
    auto protocol = s.make(2, seed);
    const auto stream = StreamFor(s, 1024, 7);
    for (int64_t t = 0; t < 1024; ++t) {
      protocol->ProcessUpdate(static_cast<int>(t % 2),
                              stream[static_cast<size_t>(t)]);
    }
    return std::pair<double, int64_t>(protocol->Estimate(),
                                      protocol->stats().total());
  };
  EXPECT_EQ(run(42), run(42)) << s.name;
}

TEST_P(ConformanceTest, EstimateTracksTheSumLoosely) {
  // Conformance-level sanity (the tight guarantees are protocol-specific
  // tests): after a drifting run the estimate is within 25% of the truth
  // for every protocol except the intentionally broken baselines.
  const auto s = spec();
  if (s.name == "periodic_sync" || s.name == "two_monotonic") return;
  auto protocol = s.make(2, 5);
  const auto stream = StreamFor(s, 2048, 9);
  double sum = 0.0;
  for (int64_t t = 0; t < 2048; ++t) {
    const double v = stream[static_cast<size_t>(t)];
    protocol->ProcessUpdate(static_cast<int>(t % 2), v);
    sum += v;
  }
  EXPECT_NEAR(protocol->Estimate(), sum, 0.25 * std::fabs(sum) + 1.0)
      << s.name;
}

TEST_P(ConformanceTest, SurvivesAllAssignmentPolicies) {
  const auto s = spec();
  for (const char* psi_name : {"round_robin", "random", "single", "block",
                               "sign_split", "zero_crossing"}) {
    auto protocol = s.make(4, 11);
    auto psi = sim::MakeAssignment(psi_name, 4, 13);
    ASSERT_NE(psi, nullptr);
    const auto stream = StreamFor(s, 512, 15);
    for (int64_t t = 0; t < 512; ++t) {
      const double v = stream[static_cast<size_t>(t)];
      protocol->ProcessUpdate(psi->NextSite(t, v), v);
    }
    EXPECT_GE(protocol->stats().total(), 0) << s.name << "/" << psi_name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ConformanceTest,
                         ::testing::Range<size_t>(0, 8),
                         [](const ::testing::TestParamInfo<size_t>& param) {
                           return AllProtocols()[param.param].name;
                         });

}  // namespace
}  // namespace nmc
