// Protocol conformance suite: a battery of contracts every sim::Protocol
// in the library must satisfy, applied uniformly to every protocol in
// sim::ProtocolRegistry. This is what guarantees the benches can treat
// protocols interchangeably — and that anything newly registered is held
// to the same contracts automatically.

#include <cmath>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "registry/builtin.h"
#include "sim/assignment.h"
#include "sim/channel.h"
#include "sim/registry.h"
#include "streams/bernoulli.h"

namespace nmc {
namespace {

/// Number of builtin protocols the suite is instantiated over. If this
/// fails, a protocol was (de)registered: update kBuiltinCount and the
/// Range below so the new protocol is covered.
constexpr size_t kBuiltinCount = 8;

struct ProtocolSpec {
  std::string name;
  sim::ProtocolTraits traits;
};

std::vector<ProtocolSpec> AllProtocols() {
  registry::RegisterBuiltinProtocols();
  const sim::ProtocolRegistry& registry = sim::ProtocolRegistry::Global();
  std::vector<ProtocolSpec> specs;
  for (const std::string& name : registry.Names()) {
    specs.push_back({name, *registry.Traits(name)});
  }
  return specs;
}

sim::ProtocolParams BaseParams(uint64_t seed) {
  sim::ProtocolParams params;
  params.epsilon = 0.2;
  params.horizon_n = 4096;
  params.delta = 1e-6;
  params.period = 8;
  params.seed = seed;
  return params;
}

std::unique_ptr<sim::Protocol> Make(const ProtocolSpec& spec, int k,
                                    uint64_t seed) {
  return sim::ProtocolRegistry::Global().Create(spec.name, k,
                                                BaseParams(seed));
}

std::vector<double> StreamFor(const ProtocolSpec& spec, int64_t n,
                              uint64_t seed) {
  if (spec.traits.monotonic_only) {
    return std::vector<double>(static_cast<size_t>(n), 1.0);
  }
  if (!spec.traits.general_values) {
    return streams::BernoulliStream(n, 0.3, seed);  // ±1 only
  }
  return streams::FractionalIidStream(n, 0.1, 0.9, seed);
}

class ConformanceTest : public ::testing::TestWithParam<size_t> {
 protected:
  ProtocolSpec spec() const { return AllProtocols()[GetParam()]; }
};

TEST(ConformanceRegistryTest, InstantiationCoversTheWholeRegistry) {
  EXPECT_EQ(AllProtocols().size(), kBuiltinCount)
      << "registry changed: update kBuiltinCount and the Range in the "
         "INSTANTIATE below";
}

TEST_P(ConformanceTest, ReportsNumSites) {
  const auto s = spec();
  for (int k : {1, 3, 16}) {
    auto protocol = Make(s, k, 1);
    EXPECT_EQ(protocol->num_sites(), k) << s.name;
  }
}

TEST_P(ConformanceTest, EstimateValidBeforeAnyUpdate) {
  const auto s = spec();
  auto protocol = Make(s, 2, 1);
  EXPECT_DOUBLE_EQ(protocol->Estimate(), 0.0) << s.name;
}

TEST_P(ConformanceTest, StatsMonotoneNondecreasing) {
  const auto s = spec();
  auto protocol = Make(s, 3, 2);
  const auto stream = StreamFor(s, 512, 3);
  int64_t previous = protocol->stats().total();
  for (int64_t t = 0; t < 512; ++t) {
    protocol->ProcessUpdate(static_cast<int>(t % 3),
                            stream[static_cast<size_t>(t)]);
    const int64_t now = protocol->stats().total();
    ASSERT_GE(now, previous) << s.name << " t=" << t;
    previous = now;
  }
}

TEST_P(ConformanceTest, DeterministicInSeed) {
  const auto s = spec();
  auto run = [&](uint64_t seed) {
    auto protocol = Make(s, 2, seed);
    const auto stream = StreamFor(s, 1024, 7);
    for (int64_t t = 0; t < 1024; ++t) {
      protocol->ProcessUpdate(static_cast<int>(t % 2),
                              stream[static_cast<size_t>(t)]);
    }
    return std::pair<double, int64_t>(protocol->Estimate(),
                                      protocol->stats().total());
  };
  EXPECT_EQ(run(42), run(42)) << s.name;
}

TEST_P(ConformanceTest, EstimateTracksTheSumLoosely) {
  // Conformance-level sanity (the tight guarantees are protocol-specific
  // tests): after a drifting run the estimate is within 25% of the truth
  // for every protocol except the intentionally broken baselines.
  const auto s = spec();
  if (s.name == "periodic_sync" || s.name == "two_monotonic") return;
  auto protocol = Make(s, 2, 5);
  const auto stream = StreamFor(s, 2048, 9);
  double sum = 0.0;
  for (int64_t t = 0; t < 2048; ++t) {
    const double v = stream[static_cast<size_t>(t)];
    protocol->ProcessUpdate(static_cast<int>(t % 2), v);
    sum += v;
  }
  EXPECT_NEAR(protocol->Estimate(), sum, 0.25 * std::fabs(sum) + 1.0)
      << s.name;
}

TEST_P(ConformanceTest, SurvivesAllAssignmentPolicies) {
  const auto s = spec();
  for (const char* psi_name : {"round_robin", "random", "single", "block",
                               "sign_split", "zero_crossing"}) {
    auto protocol = Make(s, 4, 11);
    auto psi = sim::MakeAssignment(psi_name, 4, 13);
    ASSERT_NE(psi, nullptr);
    const auto stream = StreamFor(s, 512, 15);
    for (int64_t t = 0; t < 512; ++t) {
      const double v = stream[static_cast<size_t>(t)];
      protocol->ProcessUpdate(psi->NextSite(t, v), v);
    }
    EXPECT_GE(protocol->stats().total(), 0) << s.name << "/" << psi_name;
  }
}

/// The ProcessBatch contract: feeding same-site runs through ProcessBatch
/// (honoring its consume-a-prefix return) must be bit-identical to feeding
/// the same updates one at a time — same estimates, same message counts.
TEST_P(ConformanceTest, ProcessBatchMatchesPerUpdateExecution) {
  const auto s = spec();
  auto per_update = Make(s, 3, 33);
  auto batched = Make(s, 3, 33);
  const auto stream = StreamFor(s, 1024, 21);
  constexpr int64_t kRun = 16;  // same-site run length
  for (int64_t base = 0; base < 1024; base += kRun) {
    const int site = static_cast<int>((base / kRun) % 3);
    for (int64_t t = base; t < base + kRun; ++t) {
      per_update->ProcessUpdate(site, stream[static_cast<size_t>(t)]);
    }
    std::span<const double> run(stream.data() + base,
                                static_cast<size_t>(kRun));
    while (!run.empty()) {
      const int64_t consumed = batched->ProcessBatch(site, run);
      ASSERT_GE(consumed, 1) << s.name;
      ASSERT_LE(consumed, static_cast<int64_t>(run.size())) << s.name;
      run = run.subspan(static_cast<size_t>(consumed));
    }
    ASSERT_EQ(per_update->Estimate(), batched->Estimate())
        << s.name << " after run ending at " << base + kRun;
  }
  EXPECT_EQ(per_update->stats().total(), batched->stats().total()) << s.name;
}

/// Fault-machinery neutrality: a registered protocol built with an
/// explicit kPerfect channel config must behave exactly like the default,
/// and a zero-loss Bernoulli channel — the machinery fully installed, but
/// every verdict kDeliver — must be observationally identical update for
/// update.
TEST_P(ConformanceTest, PerfectChannelIsBitIdentical) {
  const auto s = spec();
  const auto trace = [&](const sim::ChannelConfig& channel) {
    sim::ProtocolParams params = BaseParams(77);
    params.channel = channel;
    auto protocol =
        sim::ProtocolRegistry::Global().Create(s.name, 2, params);
    const auto stream = StreamFor(s, 768, 19);
    std::vector<double> estimates;
    for (int64_t t = 0; t < 768; ++t) {
      protocol->ProcessUpdate(static_cast<int>(t % 2),
                              stream[static_cast<size_t>(t)]);
      estimates.push_back(protocol->Estimate());
    }
    return std::pair<std::vector<double>, int64_t>(std::move(estimates),
                                                   protocol->stats().total());
  };

  const auto baseline = trace(sim::ChannelConfig{});  // default: kPerfect
  sim::ChannelConfig explicit_perfect;
  explicit_perfect.kind = sim::ChannelConfig::Kind::kPerfect;
  const auto explicit_trace = trace(explicit_perfect);
  EXPECT_EQ(baseline.first, explicit_trace.first) << s.name;
  EXPECT_EQ(baseline.second, explicit_trace.second) << s.name;

  if (s.name == "horizon_free") return;  // rejects faulty channels by design
  sim::ChannelConfig zero_loss;
  zero_loss.kind = sim::ChannelConfig::Kind::kLoss;
  zero_loss.loss = 0.0;
  zero_loss.duplicate = 0.0;
  zero_loss.seed = 2;
  const auto lossless = trace(zero_loss);
  EXPECT_EQ(baseline.first, lossless.first)
      << s.name << ": installing a zero-loss channel changed behavior";
  EXPECT_EQ(baseline.second, lossless.second) << s.name;
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ConformanceTest,
                         ::testing::Range<size_t>(0, kBuiltinCount),
                         [](const ::testing::TestParamInfo<size_t>& param) {
                           return AllProtocols()[param.param].name;
                         });

}  // namespace
}  // namespace nmc
