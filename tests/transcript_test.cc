// Message-transcript tests: the observer tap sees every transmission in
// order, and a fixed-seed counter run produces an exactly reproducible
// transcript — a golden regression guard on the protocol's wire behavior.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/nonmonotonic_counter.h"
#include "streams/bernoulli.h"
#include "sim/network.h"
#include "test_util.h"

namespace nmc {
namespace {

std::string Render(const sim::Network::SentMessage& sent) {
  // type:direction:site — payload values are omitted so the golden string
  // captures the protocol's control flow, not float formatting.
  return std::to_string(sent.message.type) +
         (sent.to_coordinator ? ">C" : ">s") + std::to_string(sent.site_id);
}

TEST(TranscriptTest, ObserverSeesEveryTransmissionInOrder) {
  sim::Network network(2);
  std::vector<std::string> log;
  network.SetObserver([&](const sim::Network::SentMessage& sent) {
    log.push_back(Render(sent));
  });
  // No nodes needed: observation happens at send time.
  sim::Message m;
  m.type = 7;
  network.SendToCoordinator(1, m);
  m.type = 8;
  network.Broadcast(m);
  m.type = 9;
  network.SendToSite(0, m);
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0], "7>C1");
  EXPECT_EQ(log[1], "8>s0");
  EXPECT_EQ(log[2], "8>s1");
  EXPECT_EQ(log[3], "9>s0");
  // Observation does not perturb accounting.
  EXPECT_EQ(network.stats().total(), 4);
}

TEST(TranscriptTest, RemovingObserverStopsObservation) {
  sim::Network network(1);
  int seen = 0;
  network.SetObserver([&](const sim::Network::SentMessage&) { ++seen; });
  sim::Message m;
  network.SendToCoordinator(0, m);
  network.SetObserver(nullptr);
  network.SendToCoordinator(0, m);
  EXPECT_EQ(seen, 1);
}

// Golden transcript: a tiny fixed-seed run of the counter. Protocol
// message types (see nonmonotonic_counter.cc): 4 = kState,
// 5 = kStraightReport. With k = 2 and a near-zero count the counter
// stays in StraightSync: each update is a report followed by a unicast
// state ack to the reporter.
TEST(TranscriptTest, GoldenStraightSyncTranscript) {
  core::NonMonotonicCounter counter(
      2, nmc::testing::DefaultOptions(/*n=*/8, /*epsilon=*/0.1, /*seed=*/1));
  std::vector<std::string> log;
  counter.SetMessageObserver([&](const sim::Network::SentMessage& sent) {
    log.push_back(Render(sent));
  });
  counter.ProcessUpdate(0, 1.0);
  counter.ProcessUpdate(1, -1.0);
  counter.ProcessUpdate(1, 1.0);
  const std::vector<std::string> golden{
      "5>C0", "4>s0",  // update at site 0: report + ack
      "5>C1", "4>s1",  // update at site 1: report + ack
      "5>C1", "4>s1",
  };
  EXPECT_EQ(log, golden);
}

// The transcript of a randomized run is a pure function of the seed.
TEST(TranscriptTest, TranscriptDeterministicInSeed) {
  auto run = [](uint64_t seed) {
    const auto stream = streams::BernoulliStream(2000, 0.8, 42);
    core::NonMonotonicCounter counter(
        3, nmc::testing::DefaultOptions(2000, 0.2, seed));
    std::vector<std::string> log;
    counter.SetMessageObserver([&](const sim::Network::SentMessage& sent) {
      log.push_back(Render(sent));
    });
    for (int64_t t = 0; t < 2000; ++t) {
      counter.ProcessUpdate(static_cast<int>(t % 3),
                            stream[static_cast<size_t>(t)]);
    }
    return log;
  };
  const auto a = run(5);
  const auto b = run(5);
  const auto c = run(6);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // different coins, different sync times
}

}  // namespace
}  // namespace nmc
