#include "common/spsc_queue.h"

#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace nmc::common {
namespace {

TEST(SpscQueueTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscQueue<int>(64).capacity(), 64u);
  EXPECT_EQ(SpscQueue<int>(65).capacity(), 128u);
}

TEST(SpscQueueTest, FifoSingleThread) {
  SpscQueue<int> queue(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(queue.TryPush(i));
  EXPECT_FALSE(queue.TryPush(99)) << "full queue must refuse";
  int out = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(queue.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(queue.TryPop(&out)) << "empty queue must refuse";
}

TEST(SpscQueueTest, WraparoundAtCapacityBoundary) {
  // Capacity 4; drive the indices far past one lap so every slot is
  // reused many times and the monotonic-index-with-mask arithmetic is
  // exercised across the wrap.
  SpscQueue<int64_t> queue(4);
  int64_t next_push = 0;
  int64_t next_pop = 0;
  for (int round = 0; round < 100; ++round) {
    while (queue.TryPush(next_push)) ++next_push;
    int64_t out = -1;
    while (queue.TryPop(&out)) {
      ASSERT_EQ(out, next_pop);
      ++next_pop;
    }
  }
  EXPECT_EQ(next_push, next_pop);
  EXPECT_GE(next_push, 100 * 4);
}

TEST(SpscQueueTest, PeekContiguousSplitsAtWrap) {
  SpscQueue<int> queue(4);
  // Advance the ring so the next batch straddles the physical end:
  // push 3, pop 3 (head = tail = 3), then push 4 (slots 3, 0, 1, 2).
  int out = -1;
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(queue.TryPush(i));
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(queue.TryPop(&out));
  for (int i = 10; i < 14; ++i) ASSERT_TRUE(queue.TryPush(i));

  // First peek stops at the wrap point: one item (slot 3).
  std::span<const int> view = queue.PeekContiguous(16);
  ASSERT_EQ(view.size(), 1u);
  EXPECT_EQ(view[0], 10);
  queue.Advance(view.size());

  // Second peek returns the remainder from the ring's start.
  view = queue.PeekContiguous(16);
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view[0], 11);
  EXPECT_EQ(view[2], 13);
  queue.Advance(view.size());
  EXPECT_TRUE(queue.PeekContiguous(1).empty());
}

TEST(SpscQueueTest, TryPushSpanTakesWhatFits) {
  SpscQueue<int> queue(8);
  std::vector<int> items(12);
  std::iota(items.begin(), items.end(), 0);
  EXPECT_EQ(queue.TryPushSpan(items), 8u);
  EXPECT_EQ(queue.TryPushSpan(std::span<const int>(items).subspan(8)), 0u);
  int out = -1;
  ASSERT_TRUE(queue.TryPop(&out));
  EXPECT_EQ(out, 0);
  // One slot freed: exactly one more fits.
  EXPECT_EQ(queue.TryPushSpan(std::span<const int>(items).subspan(8)), 1u);
  for (int expected = 1; expected <= 8; ++expected) {
    ASSERT_TRUE(queue.TryPop(&out));
    EXPECT_EQ(out, expected);
  }
}

TEST(SpscQueueTest, BulkPushMatchesScalarPush) {
  SpscQueue<int> bulk(16);
  SpscQueue<int> scalar(16);
  std::vector<int> items(10);
  std::iota(items.begin(), items.end(), 100);
  ASSERT_EQ(bulk.TryPushSpan(items), items.size());
  for (const int item : items) ASSERT_TRUE(scalar.TryPush(item));
  int a = -1, b = -1;
  while (bulk.TryPop(&a)) {
    ASSERT_TRUE(scalar.TryPop(&b));
    EXPECT_EQ(a, b);
  }
  EXPECT_FALSE(scalar.TryPop(&b));
}

// The RingCapacity tag bypasses the historical floor-of-2 rounding of the
// min-capacity constructor (compile-time rejected unless a power of two),
// so the degenerate one-slot ring is constructible and must ping-pong.
TEST(SpscQueueTest, RingCapacityTagAllowsCapacityOne) {
  SpscQueue<int> queue(RingCapacity<1>{});
  EXPECT_EQ(queue.capacity(), 1u);
  int out = -1;
  for (int round = 0; round < 5; ++round) {
    ASSERT_TRUE(queue.TryPush(round));
    EXPECT_FALSE(queue.TryPush(99)) << "one-slot ring must refuse a second";
    ASSERT_TRUE(queue.TryPop(&out));
    EXPECT_EQ(out, round);
    EXPECT_FALSE(queue.TryPop(&out)) << "drained ring must refuse";
  }
}

// Exact-wraparound peek on the one-slot ring: every single item sits at
// the physical boundary, so PeekContiguous must never hand out a view
// that runs past the end of the slot array.
TEST(SpscQueueTest, PeekContiguousExactWrapCapacityOne) {
  SpscQueue<int> queue(RingCapacity<1>{});
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(queue.TryPush(i));
    const std::span<const int> view = queue.PeekContiguous(16);
    ASSERT_EQ(view.size(), 1u) << "view must stop at the wrap";
    EXPECT_EQ(view[0], i);
    queue.Advance(view.size());
    EXPECT_TRUE(queue.PeekContiguous(1).empty());
  }
}

// Capacity-2 ring peeked exactly at the wrap point: head parked on slot 1
// with both slots full means the contiguous view is exactly one item (the
// physical tail of the array), and the remainder arrives in a second view
// from slot 0.
TEST(SpscQueueTest, PeekContiguousExactWrapCapacityTwo) {
  SpscQueue<int> queue(RingCapacity<2>{});
  int out = -1;
  ASSERT_TRUE(queue.TryPush(0));
  ASSERT_TRUE(queue.TryPop(&out));  // park head/tail on slot 1
  ASSERT_TRUE(queue.TryPush(10));   // slot 1
  ASSERT_TRUE(queue.TryPush(11));   // wraps into slot 0

  std::span<const int> view = queue.PeekContiguous(2);
  ASSERT_EQ(view.size(), 1u) << "first view ends at the physical boundary";
  EXPECT_EQ(view[0], 10);
  queue.Advance(view.size());

  view = queue.PeekContiguous(2);
  ASSERT_EQ(view.size(), 1u);
  EXPECT_EQ(view[0], 11);
  queue.Advance(view.size());
  EXPECT_TRUE(queue.PeekContiguous(1).empty());
}

// TryPushSpan must split its batch at the seam of a capacity-2 ring the
// same way scalar pushes would land, with nothing lost on either side.
TEST(SpscQueueTest, TryPushSpanSplitsAtExactWrapCapacityTwo) {
  SpscQueue<int> queue(RingCapacity<2>{});
  int out = -1;
  ASSERT_TRUE(queue.TryPush(0));
  ASSERT_TRUE(queue.TryPop(&out));  // next write wraps after one slot
  const std::vector<int> items = {20, 21, 22};
  EXPECT_EQ(queue.TryPushSpan(items), 2u) << "only the ring fits";
  ASSERT_TRUE(queue.TryPop(&out));
  EXPECT_EQ(out, 20);
  ASSERT_TRUE(queue.TryPop(&out));
  EXPECT_EQ(out, 21);
  EXPECT_FALSE(queue.TryPop(&out));
}

// Two-thread stress: a tight ring (capacity 64) forces constant
// backpressure, so the head/tail release/acquire edges are exercised at
// every wrap. Run under TSan in CI; any missing ordering is a reported
// race on the slot memory.
TEST(SpscQueueTest, TwoThreadStress) {
  constexpr int64_t kItems = 200000;
  SpscQueue<int64_t> queue(64);
  std::thread producer([&queue]() {
    int64_t next = 0;
    while (next < kItems) {
      if (queue.TryPush(next)) {
        ++next;
      } else {
        std::this_thread::yield();
      }
    }
  });
  int64_t expected = 0;
  int64_t sum = 0;
  while (expected < kItems) {
    const std::span<const int64_t> view = queue.PeekContiguous(32);
    if (view.empty()) {
      std::this_thread::yield();
      continue;
    }
    for (const int64_t item : view) {
      ASSERT_EQ(item, expected) << "items must arrive in FIFO order";
      sum += item;
      ++expected;
    }
    queue.Advance(view.size());
  }
  producer.join();
  EXPECT_EQ(sum, kItems * (kItems - 1) / 2);
  EXPECT_EQ(queue.SizeApprox(), 0u);
}

}  // namespace
}  // namespace nmc::common
