// Channel-model and fault-injection tests: verdict semantics of each
// ChannelModel, the Network's drop/delay/duplicate machinery and its
// simulated clock, and the bit-identity guarantee of an explicitly
// installed PerfectChannel.

#include "sim/channel.h"

#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/nonmonotonic_counter.h"
#include "sim/message.h"
#include "sim/network.h"
#include "sim/node.h"

namespace nmc::sim {
namespace {

/// Every seed in this file routes through a test-local factory whose
/// construction site takes the seed as a traceable parameter; a
/// statistical flake is then fixed by varying one literal at the call.
common::Rng MakeRng(uint64_t seed) { return common::Rng(seed); }

Hop HopFrom(int site_id, int64_t tick, bool to_coordinator) {
  Hop hop;
  hop.to_coordinator = to_coordinator;
  hop.site_id = site_id;
  hop.tick = tick;
  return hop;
}

TEST(ChannelModelTest, PerfectChannelDeliversEverything) {
  PerfectChannel channel;
  for (int i = 0; i < 32; ++i) {
    const ChannelVerdict verdict =
        channel.Adjudicate(HopFrom(i % 4, i, i % 2 == 0));
    EXPECT_EQ(verdict.action, ChannelVerdict::Action::kDeliver);
  }
}

TEST(ChannelModelTest, BernoulliLossIsDeterministicInSeed) {
  BernoulliLossChannel a(0.5, 0.1, 7);
  BernoulliLossChannel b(0.5, 0.1, 7);
  for (int i = 0; i < 256; ++i) {
    const Hop hop = HopFrom(i % 3, i, false);
    EXPECT_EQ(a.Adjudicate(hop).action, b.Adjudicate(hop).action) << i;
  }
}

TEST(ChannelModelTest, BernoulliLossPartitionsTheUnitInterval) {
  // loss + duplicate = 1: every hop is either dropped or duplicated, never
  // delivered (the single uniform draw falls in one of the two bands).
  BernoulliLossChannel channel(0.5, 0.5, 3);
  int drops = 0;
  int duplicates = 0;
  for (int i = 0; i < 256; ++i) {
    const ChannelVerdict verdict = channel.Adjudicate(HopFrom(0, i, true));
    ASSERT_NE(verdict.action, ChannelVerdict::Action::kDeliver);
    if (verdict.action == ChannelVerdict::Action::kDrop) ++drops;
    if (verdict.action == ChannelVerdict::Action::kDuplicate) ++duplicates;
  }
  EXPECT_GT(drops, 0);
  EXPECT_GT(duplicates, 0);
  EXPECT_EQ(drops + duplicates, 256);
}

TEST(ChannelModelTest, BoundedDelayStaysWithinBound) {
  BoundedDelayChannel channel(1.0, 4, 11);
  bool saw[5] = {false, false, false, false, false};
  for (int i = 0; i < 512; ++i) {
    const ChannelVerdict verdict = channel.Adjudicate(HopFrom(0, i, false));
    ASSERT_EQ(verdict.action, ChannelVerdict::Action::kDelay);
    ASSERT_GE(verdict.delay_ticks, 1);
    ASSERT_LE(verdict.delay_ticks, 4);
    saw[verdict.delay_ticks] = true;
  }
  for (int d = 1; d <= 4; ++d) EXPECT_TRUE(saw[d]) << "delay " << d;
}

TEST(ChannelModelTest, CrashScheduleSilencesBothDirections) {
  CrashScheduleChannel channel({CrashInterval{1, 10, 20}});
  // Site 1 inside [10, 20): both directions dropped.
  EXPECT_EQ(channel.Adjudicate(HopFrom(1, 10, true)).action,
            ChannelVerdict::Action::kDrop);
  EXPECT_EQ(channel.Adjudicate(HopFrom(1, 19, false)).action,
            ChannelVerdict::Action::kDrop);
  // Outside the window, and for other sites, traffic flows.
  EXPECT_EQ(channel.Adjudicate(HopFrom(1, 9, true)).action,
            ChannelVerdict::Action::kDeliver);
  EXPECT_EQ(channel.Adjudicate(HopFrom(1, 20, false)).action,
            ChannelVerdict::Action::kDeliver);
  EXPECT_EQ(channel.Adjudicate(HopFrom(0, 15, true)).action,
            ChannelVerdict::Action::kDeliver);
}

TEST(ChannelModelTest, MakeChannelMapsKindsToModels) {
  ChannelConfig config;
  EXPECT_EQ(MakeChannel(config), nullptr);  // kPerfect: no channel installed
  EXPECT_FALSE(config.faulty());

  config.kind = ChannelConfig::Kind::kLoss;
  EXPECT_NE(MakeChannel(config), nullptr);
  config.kind = ChannelConfig::Kind::kDelay;
  EXPECT_NE(MakeChannel(config), nullptr);
  config.kind = ChannelConfig::Kind::kCrash;
  EXPECT_NE(MakeChannel(config), nullptr);
  EXPECT_TRUE(config.faulty());
}

// ---- Network-level fault machinery --------------------------------------

/// Replays a scripted verdict sequence (then delivers everything after the
/// script runs out) so tests control exactly which hop meets which fate.
class ScriptedChannel : public ChannelModel {
 public:
  explicit ScriptedChannel(std::vector<ChannelVerdict> script)
      : script_(std::move(script)) {}

  ChannelVerdict Adjudicate(const Hop& /*hop*/) override {
    if (next_ >= script_.size()) return ChannelVerdict::Deliver();
    return script_[next_++];
  }

 private:
  std::vector<ChannelVerdict> script_;
  size_t next_ = 0;
};

class SilentSite : public SiteNode {
 public:
  void OnLocalUpdate(double /*value*/) override {}
  void OnCoordinatorMessage(const Message& message) override {
    received_.push_back(message);
  }
  const std::vector<Message>& received() const { return received_; }

 private:
  std::vector<Message> received_;
};

class RecordingCoordinator : public CoordinatorNode {
 public:
  void OnSiteMessage(int site_id, const Message& message) override {
    from_.push_back(site_id);
    received_.push_back(message);
  }
  const std::vector<int>& from() const { return from_; }
  const std::vector<Message>& received() const { return received_; }

 private:
  std::vector<int> from_;
  std::vector<Message> received_;
};

class ChannelNetworkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_unique<Network>(3);
    network_->AttachCoordinator(&coordinator_);
    for (int s = 0; s < 3; ++s) {
      sites_.push_back(std::make_unique<SilentSite>());
      network_->AttachSite(s, sites_.back().get());
    }
  }

  void Install(std::vector<ChannelVerdict> script) {
    network_->SetChannel(std::make_unique<ScriptedChannel>(std::move(script)));
  }

  std::unique_ptr<Network> network_;
  RecordingCoordinator coordinator_;
  std::vector<std::unique_ptr<SilentSite>> sites_;
};

TEST_F(ChannelNetworkTest, DroppedMessageIsChargedButNotDelivered) {
  Install({ChannelVerdict::Drop()});
  Message m;
  m.type = 1;
  network_->SendToCoordinator(0, m);
  network_->DeliverAll();
  EXPECT_EQ(coordinator_.received().size(), 0u);
  // The send is still charged: dropping happens after transmission.
  EXPECT_EQ(network_->stats().site_to_coordinator, 1);
  EXPECT_EQ(network_->stats().dropped, 1);
}

TEST_F(ChannelNetworkTest, DuplicatedMessageArrivesTwiceChargedOnce) {
  Install({ChannelVerdict::Duplicate()});
  Message m;
  m.type = 1;
  m.u = 42;
  network_->SendToCoordinator(2, m);
  network_->DeliverAll();
  ASSERT_EQ(coordinator_.received().size(), 2u);
  EXPECT_EQ(coordinator_.received()[0].u, 42);
  EXPECT_EQ(coordinator_.received()[1].u, 42);
  EXPECT_EQ(network_->stats().site_to_coordinator, 1);
  EXPECT_EQ(network_->stats().duplicated, 1);
}

TEST_F(ChannelNetworkTest, DelayedMessageArrivesAtItsDueTick) {
  Install({ChannelVerdict::Delay(3)});
  Message m;
  m.type = 1;
  network_->SendToCoordinator(0, m);
  network_->DeliverAll();
  EXPECT_EQ(coordinator_.received().size(), 0u);
  EXPECT_EQ(network_->pending_delayed(), 1);
  EXPECT_EQ(network_->stats().delayed, 1);

  network_->BeginTick();  // tick 1
  network_->BeginTick();  // tick 2
  EXPECT_EQ(coordinator_.received().size(), 0u);
  network_->BeginTick();  // tick 3: due
  EXPECT_EQ(coordinator_.received().size(), 1u);
  EXPECT_EQ(network_->pending_delayed(), 0);
}

TEST_F(ChannelNetworkTest, DelayedDeliveryPreservesSendOrder) {
  Install({ChannelVerdict::Delay(2), ChannelVerdict::Delay(1),
           ChannelVerdict::Delay(2)});
  Message m;
  m.type = 1;
  for (int i = 0; i < 3; ++i) {
    m.u = i;
    network_->SendToCoordinator(i, m);
  }
  network_->BeginTick();  // tick 1: second message due
  ASSERT_EQ(coordinator_.received().size(), 1u);
  EXPECT_EQ(coordinator_.received()[0].u, 1);
  network_->BeginTick();  // tick 2: first and third due, in send order
  ASSERT_EQ(coordinator_.received().size(), 3u);
  EXPECT_EQ(coordinator_.received()[1].u, 0);
  EXPECT_EQ(coordinator_.received()[2].u, 2);
}

TEST_F(ChannelNetworkTest, BroadcastAdjudicatedPerRecipient) {
  // Recipient 0 delivered, 1 dropped, 2 delayed.
  Install({ChannelVerdict::Deliver(), ChannelVerdict::Drop(),
           ChannelVerdict::Delay(1)});
  Message m;
  m.type = 2;
  network_->Broadcast(m);
  network_->DeliverAll();
  EXPECT_EQ(sites_[0]->received().size(), 1u);
  EXPECT_EQ(sites_[1]->received().size(), 0u);
  EXPECT_EQ(sites_[2]->received().size(), 0u);
  // A broadcast is still charged k messages whatever each link did.
  EXPECT_EQ(network_->stats().coordinator_to_site, 3);
  EXPECT_EQ(network_->stats().dropped, 1);
  EXPECT_EQ(network_->stats().delayed, 1);
  network_->BeginTick();
  EXPECT_EQ(sites_[2]->received().size(), 1u);
}

TEST_F(ChannelNetworkTest, ClockAdvancesOnlyWhenChanneled) {
  EXPECT_FALSE(network_->channeled());
  network_->BeginTick();
  EXPECT_EQ(network_->now(), 0);  // no channel: BeginTick is a no-op
  Install({});
  EXPECT_TRUE(network_->channeled());
  network_->BeginTick();
  EXPECT_EQ(network_->now(), 1);
}

/// The explicit PerfectChannel object must be observationally identical to
/// running with no channel installed at all: same deliveries, same order,
/// same statistics, no fault counters touched.
TEST(PerfectChannelIdentityTest, InstalledPerfectChannelIsBitIdentical) {
  Network bare(2);
  Network channeled(2);
  RecordingCoordinator bare_coord;
  RecordingCoordinator channeled_coord;
  SilentSite bare_sites[2];
  SilentSite channeled_sites[2];
  bare.AttachCoordinator(&bare_coord);
  channeled.AttachCoordinator(&channeled_coord);
  for (int s = 0; s < 2; ++s) {
    bare.AttachSite(s, &bare_sites[s]);
    channeled.AttachSite(s, &channeled_sites[s]);
  }
  channeled.SetChannel(std::make_unique<PerfectChannel>());

  common::Rng rng = MakeRng(5);
  for (int i = 0; i < 200; ++i) {
    Message m;
    m.type = static_cast<int>(rng.UniformInt(0, 5));
    m.u = i;
    const int site = static_cast<int>(rng.UniformInt(0, 1));
    switch (rng.UniformInt(0, 2)) {
      case 0:
        bare.SendToCoordinator(site, m);
        channeled.SendToCoordinator(site, m);
        break;
      case 1:
        bare.SendToSite(site, m);
        channeled.SendToSite(site, m);
        break;
      default:
        bare.Broadcast(m);
        channeled.Broadcast(m);
        break;
    }
    bare.DeliverAll();
    channeled.BeginTick();
    channeled.DeliverAll();
  }
  ASSERT_EQ(bare_coord.received().size(), channeled_coord.received().size());
  for (size_t i = 0; i < bare_coord.received().size(); ++i) {
    EXPECT_EQ(bare_coord.received()[i].u, channeled_coord.received()[i].u);
    EXPECT_EQ(bare_coord.from()[i], channeled_coord.from()[i]);
  }
  for (int s = 0; s < 2; ++s) {
    EXPECT_EQ(bare_sites[s].received().size(),
              channeled_sites[s].received().size());
  }
  EXPECT_EQ(bare.stats().site_to_coordinator,
            channeled.stats().site_to_coordinator);
  EXPECT_EQ(bare.stats().coordinator_to_site,
            channeled.stats().coordinator_to_site);
  EXPECT_EQ(channeled.stats().dropped, 0);
  EXPECT_EQ(channeled.stats().delayed, 0);
  EXPECT_EQ(channeled.stats().duplicated, 0);
}

/// Same protocol, same seed, same stream: a faulty run must be exactly
/// reproducible (the acceptance criterion for deterministic fault
/// injection).
TEST(FaultDeterminismTest, LossyCounterRunsAreReproducible) {
  const auto run = [] {
    core::CounterOptions options;
    options.epsilon = 0.2;
    options.horizon_n = 2048;
    options.seed = 17;
    options.channel.kind = ChannelConfig::Kind::kLoss;
    options.channel.loss = 0.05;
    options.channel.seed = 3;
    core::NonMonotonicCounter counter(3, options);
    common::Rng rng = MakeRng(41);
    std::vector<double> estimates;
    for (int i = 0; i < 1500; ++i) {
      counter.ProcessUpdate(i % 3, rng.Bernoulli(0.5) ? 1.0 : -1.0);
      estimates.push_back(counter.Estimate());
    }
    return std::make_pair(std::move(estimates), counter.stats());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second.total(), b.second.total());
  EXPECT_EQ(a.second.dropped, b.second.dropped);
  EXPECT_GT(a.second.dropped, 0);  // the fault model actually engaged
}

}  // namespace
}  // namespace nmc::sim
