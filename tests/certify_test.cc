#include "core/certify.h"

#include <gtest/gtest.h>

#include "streams/bernoulli.h"
#include "test_util.h"

namespace nmc::core {
namespace {

TEST(RangeFromEstimateTest, PositiveEstimate) {
  const auto range = RangeFromEstimate(110.0, 0.1);
  EXPECT_DOUBLE_EQ(range.lo, 100.0);
  EXPECT_NEAR(range.hi, 122.22, 0.01);
  EXPECT_TRUE(range.Contains(100.0));
  EXPECT_TRUE(range.Contains(120.0));
  EXPECT_FALSE(range.Contains(99.0));
}

TEST(RangeFromEstimateTest, NegativeEstimateIsMirror) {
  const auto pos = RangeFromEstimate(110.0, 0.1);
  const auto neg = RangeFromEstimate(-110.0, 0.1);
  EXPECT_DOUBLE_EQ(neg.lo, -pos.hi);
  EXPECT_DOUBLE_EQ(neg.hi, -pos.lo);
}

TEST(RangeFromEstimateTest, ZeroEstimatePinsZero) {
  const auto range = RangeFromEstimate(0.0, 0.1);
  EXPECT_DOUBLE_EQ(range.lo, 0.0);
  EXPECT_DOUBLE_EQ(range.hi, 0.0);
  EXPECT_TRUE(range.Contains(0.0));
}

TEST(RangeFromEstimateTest, RangeIsSoundForAnyTruthInGuarantee) {
  // For any S and any estimate e within [(1-eps)S, (1+eps)S], S must lie
  // in RangeFromEstimate(e).
  const double eps = 0.2;
  for (double truth : {-500.0, -1.0, 1.0, 3.0, 1000.0}) {
    for (double factor : {1.0 - eps, 1.0 - eps / 2, 1.0, 1.0 + eps}) {
      const double estimate = truth * factor;
      EXPECT_TRUE(RangeFromEstimate(estimate, eps).Contains(truth))
          << "truth=" << truth << " factor=" << factor;
    }
  }
}

TEST(CertifiedSignTest, ClearLeads) {
  EXPECT_EQ(CertifiedSign(200.0, 0.1, 50.0), 1);
  EXPECT_EQ(CertifiedSign(-200.0, 0.1, 50.0), -1);
}

TEST(CertifiedSignTest, TooCloseToCall) {
  // Estimate 52 certifies S >= 52/1.1 = 47.3 < 50: no call.
  EXPECT_EQ(CertifiedSign(52.0, 0.1, 50.0), 0);
  EXPECT_EQ(CertifiedSign(-52.0, 0.1, 50.0), 0);
  EXPECT_EQ(CertifiedSign(0.0, 0.1, 50.0), 0);
}

TEST(CertifiedSignTest, ZeroMagnitudeStillRequiresNonzero) {
  EXPECT_EQ(CertifiedSign(1.0, 0.1, 0.0), 1);
  EXPECT_EQ(CertifiedSign(-1.0, 0.1, 0.0), -1);
  EXPECT_EQ(CertifiedSign(0.0, 0.1, 0.0), 0);
}

// End to end: certified statements derived from a live counter must never
// be wrong about the true sum.
TEST(CertifyIntegrationTest, NeverLiesAboutARealRun) {
  const int64_t n = 1 << 14;
  const double eps = 0.1;
  const auto stream = streams::BernoulliStream(n, 0.2, 3);
  CounterOptions options = nmc::testing::DefaultOptions(n, eps, 4);
  NonMonotonicCounter counter(4, options);
  sim::RoundRobinAssignment psi(4);
  double truth = 0.0;
  int64_t calls = 0;
  for (int64_t t = 0; t < n; ++t) {
    const double v = stream[static_cast<size_t>(t)];
    counter.ProcessUpdate(psi.NextSite(t, v), v);
    truth += v;
    const double estimate = counter.Estimate();
    ASSERT_TRUE(RangeFromEstimate(estimate, eps).Contains(truth)) << t;
    const int sign = CertifiedSign(estimate, eps, 25.0);
    if (sign != 0) {
      ++calls;
      ASSERT_EQ(sign, truth > 0 ? 1 : -1) << t;
      ASSERT_GE(std::abs(truth), 25.0) << t;
    }
  }
  EXPECT_GT(calls, n / 2);  // the drifting run is mostly callable
}

}  // namespace
}  // namespace nmc::core
