#include "core/lower_bound.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "streams/adversarial.h"
#include "streams/bernoulli.h"

namespace nmc::core {
namespace {

TEST(CountOccupancyTest, AlternatingStreamAlwaysInsideUnitBall) {
  const auto stream = streams::AlternatingStream(100);
  EXPECT_EQ(CountOccupancy(stream, 1.0), 100);
}

TEST(CountOccupancyTest, MonotoneStreamLeavesQuickly) {
  std::vector<double> stream(1000, 1.0);
  EXPECT_EQ(CountOccupancy(stream, 10.0), 10);
}

TEST(CountOccupancyTest, ZeroRadiusCountsExactZeros) {
  // Prefix sums: 1, 0, 1, 0 -> two exact zeros.
  const auto stream = streams::AlternatingStream(4);
  EXPECT_EQ(CountOccupancy(stream, 0.0), 2);
}

TEST(CountOccupancyTest, RandomWalkOccupancyScalesAsSqrtN) {
  // E[#visits to |S| <= r] ~ 2 r sqrt(2n/pi) / ... — we only check the
  // sqrt(n) growth: quadrupling n should roughly double the occupancy.
  const double radius = 10.0;
  auto occupancy_at = [&](int64_t n) {
    double total = 0.0;
    const int trials = 24;
    for (int trial = 0; trial < trials; ++trial) {
      const auto stream =
          streams::BernoulliStream(n, 0.0, 500 + static_cast<uint64_t>(trial));
      total += static_cast<double>(CountOccupancy(stream, radius));
    }
    return total / trials;
  };
  const double occ_small = occupancy_at(1 << 12);
  const double occ_large = occupancy_at(1 << 14);
  const double ratio = occ_large / occ_small;
  EXPECT_GT(ratio, 1.4);
  EXPECT_LT(ratio, 2.9);
}

TEST(CountPhaseOccupancyTest, ZeroSumStreamCountsEveryPhase) {
  // All-zero drift with tiny values keeps the sum at ~0: every phase start
  // is inside the window.
  std::vector<double> stream(1000, 0.0);
  EXPECT_EQ(CountPhaseOccupancy(stream, 10, 0.1), 100);
}

TEST(CountPhaseOccupancyTest, DriftingStreamEscapes) {
  std::vector<double> stream(10000, 1.0);
  const int64_t counted = CountPhaseOccupancy(stream, 10, 0.1);
  // sqrt(k)/eps = 31.6: after ~4 phases the sum exceeds the window.
  EXPECT_LT(counted, 8);
  EXPECT_GE(counted, 1);
}

TEST(KInputsGameTest, FullSamplingNeverErrs) {
  const auto result = RunKInputsGame(64, 64, 1.0, 2000, 1);
  EXPECT_GT(result.decided_trials, 0);
  EXPECT_EQ(result.errors, 0);
}

TEST(KInputsGameTest, NoSamplingIsACoinFlip) {
  const auto result = RunKInputsGame(64, 0, 1.0, 20000, 2);
  EXPECT_GT(result.decided_trials, 1000);
  EXPECT_NEAR(result.error_rate(), 0.5, 0.05);
}

TEST(KInputsGameTest, ErrorDecreasesWithSampledFraction) {
  const int64_t k = 256;
  double prev_rate = 1.0;
  for (int64_t z : {0, 16, 64, 256}) {
    const auto result = RunKInputsGame(k, z, 1.0, 20000, 3);
    const double rate = result.error_rate();
    EXPECT_LE(rate, prev_rate + 0.03) << "z=" << z;
    prev_rate = rate;
  }
  EXPECT_LT(prev_rate, 0.01);
}

TEST(KInputsGameTest, SublinearSampleHasConstantError) {
  // Lemma 4.4: z = o(k) leaves Omega(1) error. With z = sqrt(k) the error
  // rate stays bounded away from 0.
  const auto result = RunKInputsGame(1024, 32, 1.0, 20000, 4);
  EXPECT_GT(result.error_rate(), 0.05);
}

TEST(KInputsGameTest, DecisionFractionMatchesGaussianTail) {
  // |sum| >= sqrt(k) happens with probability ~ 2*(1 - Phi(1)) ~ 0.317.
  const auto result = RunKInputsGame(1024, 0, 1.0, 50000, 5);
  const double fraction = static_cast<double>(result.decided_trials) /
                          static_cast<double>(result.trials);
  EXPECT_NEAR(fraction, 0.317, 0.02);
}

}  // namespace
}  // namespace nmc::core
