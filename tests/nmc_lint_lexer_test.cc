// Unit tests for the nmc_lint token lexer: the classifications the rules
// lean on (comments and literals are invisible, directives are a separate
// stream) and the two things the old line scanner got wrong — raw-string
// delimiters and line accounting across splices and multi-line literals.
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "nmc_lint/lexer.h"

namespace nmc::lint {
namespace {

std::vector<Token> CodeAndLiterals(const std::string& src) { return Lex(src); }

const Token* FindText(const std::vector<Token>& tokens,
                      const std::string& text) {
  for (const Token& t : tokens) {
    if (t.text == text) return &t;
  }
  return nullptr;
}

TEST(NmcLintLexerTest, ClassifiesBasicTokenKinds) {
  const auto tokens = Lex("int x = 42; foo->bar(x);");
  ASSERT_GE(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "int");
  EXPECT_EQ(FindText(tokens, "42")->kind, TokenKind::kNumber);
  EXPECT_EQ(FindText(tokens, "=")->kind, TokenKind::kPunct);
  EXPECT_EQ(FindText(tokens, "->")->kind, TokenKind::kPunct);
}

TEST(NmcLintLexerTest, LineCommentVersusBlockComment) {
  const auto tokens = Lex("a // trailing rand()\nb /* block\nstill block */ c\n");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].kind, TokenKind::kComment);
  EXPECT_EQ(tokens[1].text, "// trailing rand()");
  EXPECT_EQ(tokens[2].text, "b");
  EXPECT_EQ(tokens[2].line, 2);
  EXPECT_EQ(tokens[3].kind, TokenKind::kComment);
  EXPECT_EQ(tokens[3].line, 2);
  // The block comment spans a newline; `c` lands on line 3.
  EXPECT_EQ(tokens[4].text, "c");
  EXPECT_EQ(tokens[4].line, 3);
}

TEST(NmcLintLexerTest, RawStringRespectsDelimiter) {
  // The embedded )" must not close the literal; only )x" does.
  const auto tokens = Lex(R"src(auto s = R"x(text )" more)x"; done)src");
  const Token* raw = nullptr;
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kRawString) raw = &t;
  }
  ASSERT_NE(raw, nullptr);
  EXPECT_EQ(raw->text, "R\"x(text )\" more)x\"");
  EXPECT_NE(FindText(tokens, "done"), nullptr);
  EXPECT_EQ(FindText(tokens, "more"), nullptr) << "literal body leaked";
}

TEST(NmcLintLexerTest, MultiLineRawStringKeepsLineNumbers) {
  const auto tokens = Lex("x\nauto q = R\"(one\ntwo\nthree)\";\nafter\n");
  const Token* after = FindText(tokens, "after");
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->line, 5);
  const Token* two = FindText(tokens, "two");
  EXPECT_EQ(two, nullptr) << "raw-string body leaked into the code stream";
}

TEST(NmcLintLexerTest, EncodingPrefixedLiterals) {
  const auto tokens = Lex("u8\"bytes\" L'x' u\"wide\" U'y' LR\"(raw)\"");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kString);
  EXPECT_EQ(tokens[1].kind, TokenKind::kCharLiteral);
  EXPECT_EQ(tokens[2].kind, TokenKind::kString);
  EXPECT_EQ(tokens[3].kind, TokenKind::kCharLiteral);
  EXPECT_EQ(tokens[4].kind, TokenKind::kRawString);
}

TEST(NmcLintLexerTest, CharLiteralsWithQuotesInside) {
  const auto tokens = Lex("char a = '\"'; char b = '\\''; int z = 1;");
  // Neither the double quote nor the escaped single quote may open a
  // string that swallows the rest of the input.
  const Token* z = FindText(tokens, "z");
  ASSERT_NE(z, nullptr);
  EXPECT_EQ(FindText(tokens, "1")->kind, TokenKind::kNumber);
  int char_literals = 0;
  for (const Token& t : tokens) {
    char_literals += t.kind == TokenKind::kCharLiteral ? 1 : 0;
  }
  EXPECT_EQ(char_literals, 2);
}

TEST(NmcLintLexerTest, LineContinuationSplicesTokens) {
  // An identifier split by backslash-newline is one token, reported at the
  // physical line where it starts.
  const auto tokens = Lex("ran\\\ndom_device x;\nnext\n");
  const Token* spliced = FindText(tokens, "random_device");
  ASSERT_NE(spliced, nullptr);
  EXPECT_EQ(spliced->line, 1);
  const Token* next = FindText(tokens, "next");
  ASSERT_NE(next, nullptr);
  EXPECT_EQ(next->line, 3);
}

TEST(NmcLintLexerTest, ContinuedLineCommentStaysOneComment) {
  // A '\' at the end of a // comment continues the comment onto the next
  // physical line; nothing there may surface as code.
  const auto tokens = Lex("a // comment \\\nrand();\nb\n");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].kind, TokenKind::kComment);
  EXPECT_EQ(tokens[2].text, "b");
  EXPECT_EQ(tokens[2].line, 3);
}

TEST(NmcLintLexerTest, DirectivesAreTheirOwnStream) {
  const auto tokens =
      Lex("#include <iostream>\nint x; // #include <map>\n#pragma once\n");
  std::vector<std::string> directives;
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kPpDirective) directives.push_back(t.text);
  }
  ASSERT_EQ(directives.size(), 2u);
  EXPECT_EQ(directives[0], "#include <iostream>");
  EXPECT_EQ(directives[1], "#pragma once");
}

TEST(NmcLintLexerTest, ContinuedDirectiveKeepsStartLine) {
  const auto tokens = Lex("#define M(x) \\\n  ((x) + 1)\nint y;\n");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kPpDirective);
  EXPECT_EQ(tokens[0].line, 1);
  const Token* y = FindText(tokens, "y");
  ASSERT_NE(y, nullptr);
  EXPECT_EQ(y->line, 3);
}

TEST(NmcLintLexerTest, NumbersWithExponentsAndSeparators) {
  const auto tokens = CodeAndLiterals("1e+9 0x1p-3 1'000'000 0x9e3779b97f4a7c15ULL");
  ASSERT_EQ(tokens.size(), 4u);
  for (const Token& t : tokens) {
    EXPECT_EQ(t.kind, TokenKind::kNumber) << t.text;
  }
  EXPECT_EQ(tokens[0].text, "1e+9");
  EXPECT_EQ(tokens[1].text, "0x1p-3");
  EXPECT_EQ(tokens[3].text, "0x9e3779b97f4a7c15ULL");
}

TEST(NmcLintLexerTest, ShiftStaysOneToken) {
  // Documented contract: ">>" is a single token; bracket balancers must
  // count it as two closers.
  const auto tokens = Lex("map<int, set<int>> m;");
  EXPECT_NE(FindText(tokens, ">>"), nullptr);
}

}  // namespace
}  // namespace nmc::lint
