#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/nonmonotonic_counter.h"
#include "runtime/run.h"
#include "sim/assignment.h"
#include "sim/harness.h"

namespace nmc::testing {

/// Runs the Non-monotonic Counter over `stream` with round-robin site
/// assignment and returns the harness result, going through the unified
/// transport entry point (sim backend). The checker epsilon equals the
/// counter's epsilon.
inline sim::TrackingResult RunCounter(const std::vector<double>& stream,
                                      int num_sites,
                                      const core::CounterOptions& options) {
  core::NonMonotonicCounter counter(num_sites, options);
  sim::RoundRobinAssignment psi(num_sites);
  runtime::RunConfig config;
  config.protocol = &counter;
  config.stream = &stream;
  config.psi = &psi;
  config.tracking.epsilon = options.epsilon;
  return runtime::RunWithTransport(runtime::TransportKind::kSim, config)
      .tracking;
}

/// Default counter options for a stream of length n.
inline core::CounterOptions DefaultOptions(int64_t n, double epsilon,
                                           uint64_t seed) {
  core::CounterOptions options;
  options.epsilon = epsilon;
  options.horizon_n = n;
  options.seed = seed;
  return options;
}

}  // namespace nmc::testing

