#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/nonmonotonic_counter.h"
#include "sim/assignment.h"
#include "sim/harness.h"

namespace nmc::testing {

/// Runs the Non-monotonic Counter over `stream` with round-robin site
/// assignment and returns the harness result. The checker epsilon equals
/// the counter's epsilon.
inline sim::TrackingResult RunCounter(const std::vector<double>& stream,
                                      int num_sites,
                                      const core::CounterOptions& options) {
  core::NonMonotonicCounter counter(num_sites, options);
  sim::RoundRobinAssignment psi(num_sites);
  sim::TrackingOptions tracking;
  tracking.epsilon = options.epsilon;
  return sim::RunTracking(stream, &psi, &counter, tracking);
}

/// Default counter options for a stream of length n.
inline core::CounterOptions DefaultOptions(int64_t n, double epsilon,
                                           uint64_t seed) {
  core::CounterOptions options;
  options.epsilon = epsilon;
  options.horizon_n = n;
  options.seed = seed;
  return options;
}

}  // namespace nmc::testing

