// sim::Arena / sim::ArenaVector contract tests: bump allocation and
// alignment, Reset() rewinding storage for reuse without returning it,
// high-water/reserved accounting, ArenaVector growth-by-abandonment, and
// the ReleaseStorage + Reset + reserve re-reservation cycle the Network
// uses to reach a zero-allocation steady state. Runs under the sanitizer
// presets like every tier-1 test, which is the ASan/UBSan cleanliness
// check for the pointer arithmetic here.

#include <cstdint>
#include <cstring>

#include <gtest/gtest.h>

#include "sim/arena.h"

namespace nmc {
namespace {

using sim::Arena;
using sim::ArenaVector;

TEST(ArenaTest, AllocateAlignsAndSeparates) {
  Arena arena;
  auto* a = static_cast<char*>(arena.Allocate(3, 1));
  auto* b = static_cast<double*>(arena.Allocate(sizeof(double), alignof(double)));
  auto* c = static_cast<char*>(arena.Allocate(5, 1));
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % alignof(double), 0u);
  // Distinct, non-overlapping regions: write patterns and read them back.
  std::memset(a, 0xAA, 3);
  *b = 1.5;
  std::memset(c, 0xBB, 5);
  EXPECT_EQ(static_cast<unsigned char>(a[2]), 0xAA);
  EXPECT_EQ(*b, 1.5);
  EXPECT_EQ(static_cast<unsigned char>(c[0]), 0xBB);
  EXPECT_EQ(arena.bytes_in_use(), 3u + sizeof(double) + 5u);
}

TEST(ArenaTest, ResetRewindsAndReusesStorage) {
  Arena arena;
  void* first = arena.Allocate(128, 8);
  arena.Reset();
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  // Same block, same offset: the rewound arena hands back the same memory
  // without touching the system allocator.
  void* again = arena.Allocate(128, 8);
  EXPECT_EQ(first, again);
  EXPECT_EQ(arena.reserved_bytes(), Arena::kDefaultBlockBytes);
}

TEST(ArenaTest, HighWaterTracksPeakNotCurrent) {
  Arena arena;
  arena.Allocate(100, 1);
  arena.Allocate(200, 1);
  EXPECT_EQ(arena.high_water_bytes(), 300u);
  arena.Reset();
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  EXPECT_EQ(arena.high_water_bytes(), 300u);  // peak survives the rewind
  arena.Allocate(50, 1);
  EXPECT_EQ(arena.high_water_bytes(), 300u);
  arena.Allocate(400, 1);
  EXPECT_EQ(arena.high_water_bytes(), 450u);
}

TEST(ArenaTest, OversizedRequestGetsDedicatedBlock) {
  Arena arena(64);
  void* big = arena.Allocate(10000, 8);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0xCD, 10000);  // the whole span must be writable
  EXPECT_GE(arena.reserved_bytes(), 10000u);
  // Reset then re-allocate: the big block is retained and reused.
  const size_t reserved = arena.reserved_bytes();
  arena.Reset();
  arena.Allocate(10000, 8);
  EXPECT_EQ(arena.reserved_bytes(), reserved);
}

TEST(ArenaTest, GrowthSpillsToNewBlockWithoutInvalidatingOld) {
  Arena arena(64);
  auto* a = static_cast<uint32_t*>(arena.Allocate(sizeof(uint32_t), 4));
  *a = 0xDEADBEEF;
  // Force a second block; the first allocation must stay intact.
  arena.Allocate(4096, 8);
  EXPECT_EQ(*a, 0xDEADBEEF);
  EXPECT_GT(arena.reserved_bytes(), 64u);
}

TEST(ArenaVectorTest, PushBackGrowsAndPreservesElements) {
  Arena arena;
  ArenaVector<int64_t> v(&arena);
  EXPECT_TRUE(v.empty());
  for (int64_t i = 0; i < 1000; ++i) v.push_back(i * 3);
  ASSERT_EQ(v.size(), 1000u);
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_EQ(v[static_cast<size_t>(i)], i * 3);
  }
  // Range-for sees the same elements.
  int64_t want = 0;
  for (const int64_t x : v) {
    ASSERT_EQ(x, want);
    want += 3;
  }
}

TEST(ArenaVectorTest, ReserveThenPushDoesNotGrow) {
  Arena arena;
  ArenaVector<int> v(&arena);
  v.reserve(256);
  const size_t cap = v.capacity();
  const size_t in_use = arena.bytes_in_use();
  for (int i = 0; i < 256; ++i) v.push_back(i);
  EXPECT_EQ(v.capacity(), cap);
  EXPECT_EQ(arena.bytes_in_use(), in_use);  // no further arena traffic
}

TEST(ArenaVectorTest, ResizeDownCompactsInPlace) {
  Arena arena;
  ArenaVector<int> v(&arena);
  for (int i = 0; i < 10; ++i) v.push_back(i);
  // The delayed-queue compaction pattern: keep a filtered prefix.
  size_t kept = 0;
  for (size_t i = 0; i < v.size(); ++i) {
    if (v[i] % 2 == 0) v[kept++] = v[i];
  }
  v.resize_down(kept);
  ASSERT_EQ(v.size(), 5u);
  for (size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(v[i], static_cast<int>(i) * 2);
  }
}

TEST(ArenaVectorTest, ReleaseResetReserveReusesArenaMemory) {
  // The Network's quiescence cycle: after growth abandons storage, release
  // + reset + re-reserve rebuilds the vector at its old capacity entirely
  // from retained blocks — reserved_bytes must not move.
  Arena arena;
  ArenaVector<int64_t> v(&arena);
  for (int64_t i = 0; i < 500; ++i) v.push_back(i);  // several growths
  const size_t cap = v.capacity();
  const size_t reserved = arena.reserved_bytes();
  EXPECT_GT(arena.bytes_in_use(), cap * sizeof(int64_t));  // garbage exists
  v.clear();
  v.ReleaseStorage();
  arena.Reset();
  v.reserve(cap);
  EXPECT_EQ(v.capacity(), cap);
  EXPECT_EQ(arena.reserved_bytes(), reserved);  // nothing new minted
  EXPECT_EQ(arena.bytes_in_use(), cap * sizeof(int64_t));  // garbage gone
  for (int64_t i = 0; i < static_cast<int64_t>(cap); ++i) v.push_back(i);
  EXPECT_EQ(arena.bytes_in_use(), cap * sizeof(int64_t));  // still in place
}

}  // namespace
}  // namespace nmc
