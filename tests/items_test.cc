#include "streams/items.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

namespace nmc::streams {
namespace {

TEST(ZipfInsertStreamTest, AllInsertsInUniverse) {
  const auto updates = ZipfInsertStream(1000, 32, 1.0, 3);
  ASSERT_EQ(updates.size(), 1000u);
  for (const auto& u : updates) {
    EXPECT_EQ(u.sign, 1);
    EXPECT_GE(u.item, 0);
    EXPECT_LT(u.item, 32);
  }
}

TEST(ZipfTurnstileStreamTest, CountsNeverNegative) {
  const int64_t universe = 16;
  const auto updates = ZipfTurnstileStream(5000, universe, 1.0, 0.4, 7);
  std::vector<int64_t> counts(static_cast<size_t>(universe), 0);
  for (const auto& u : updates) {
    counts[static_cast<size_t>(u.item)] += u.sign;
    EXPECT_GE(counts[static_cast<size_t>(u.item)], 0);
  }
}

TEST(ZipfTurnstileStreamTest, DeleteFractionRoughlyHonored) {
  const auto updates = ZipfTurnstileStream(20000, 64, 1.0, 0.3, 9);
  int64_t deletions = 0;
  for (const auto& u : updates) {
    if (u.sign == -1) ++deletions;
  }
  EXPECT_NEAR(static_cast<double>(deletions) / 20000.0, 0.3, 0.02);
}

TEST(ZipfTurnstileStreamTest, ZeroDeleteFractionIsInsertOnly) {
  const auto updates = ZipfTurnstileStream(1000, 8, 0.5, 0.0, 11);
  for (const auto& u : updates) EXPECT_EQ(u.sign, 1);
}

TEST(PermutedItemStreamTest, PreservesMultiset) {
  auto updates = ZipfTurnstileStream(500, 8, 1.0, 0.2, 13);
  auto permuted = PermutedItemStream(updates, 17);
  auto key = [](const ItemUpdate& u) { return u.item * 10 + u.sign; };
  std::vector<int64_t> a, b;
  for (const auto& u : updates) a.push_back(key(u));
  for (const auto& u : permuted) b.push_back(key(u));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(ExactF2Test, HandComputedExample) {
  // Counts: item 0 -> 2, item 1 -> -1, item 2 -> 1. F2 = 4 + 1 + 1 = 6.
  const std::vector<ItemUpdate> updates{
      {0, 1}, {0, 1}, {1, -1}, {2, 1},
  };
  EXPECT_EQ(ExactF2(updates, 3), 6);
}

TEST(ExactF2Test, InsertThenDeleteAllIsZero) {
  std::vector<ItemUpdate> updates;
  for (int64_t i = 0; i < 10; ++i) updates.push_back({i % 3, 1});
  for (int64_t i = 0; i < 10; ++i) updates.push_back({i % 3, -1});
  EXPECT_EQ(ExactF2(updates, 3), 0);
}

TEST(ExactF2PrefixTest, MatchesBatchRecomputation) {
  const auto updates = ZipfTurnstileStream(300, 8, 1.0, 0.25, 19);
  const auto prefix = ExactF2Prefix(updates, 8);
  ASSERT_EQ(prefix.size(), updates.size());
  for (size_t t : {0u, 5u, 100u, 299u}) {
    const std::vector<ItemUpdate> head(updates.begin(),
                                       updates.begin() + static_cast<long>(t) + 1);
    EXPECT_EQ(prefix[t], ExactF2(head, 8)) << "t=" << t;
  }
}

TEST(ExactF2PrefixTest, MonotoneUnderInsertOnlyDistinctItems) {
  std::vector<ItemUpdate> updates;
  for (int64_t i = 0; i < 10; ++i) updates.push_back({i, 1});
  const auto prefix = ExactF2Prefix(updates, 10);
  for (size_t t = 0; t < prefix.size(); ++t) {
    EXPECT_EQ(prefix[t], static_cast<int64_t>(t) + 1);
  }
}

}  // namespace
}  // namespace nmc::streams
