// Skip-vs-coins equivalence: the geometric fast-forward must be
// indistinguishable from the per-coin reference in distribution. Three
// angles: (1) the inter-report gap histogram of a frozen-rate HYZ round,
// compared by a two-sample chi-square; (2) the coin-free deterministic
// HYZ variant, whose transcript must be bit-identical in both sampler
// modes; (3) pooled end-to-end message counts on E2/E8/E11-style
// configurations, which must agree within sampling-noise bands.

#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "core/nonmonotonic_counter.h"
#include "hyz/hyz_counter.h"
#include "sim/assignment.h"
#include "sim/harness.h"
#include "streams/adversarial.h"
#include "streams/bernoulli.h"
#include "test_util.h"

namespace nmc {
namespace {

constexpr int kHyzReport = 1;    // mirrors hyz_counter.cc's MessageType
constexpr int kHyzCollect = 2;

// ---- (1) Frozen-rate inter-report gaps ------------------------------------

struct GapSample {
  std::vector<int64_t> gaps;
  double rate = 0.0;
};

// Runs single-site kSampled HYZ trials sized to stay inside the first
// round (initial_total dominates, so the estimate never doubles and the
// rate stays frozen) and pools the distances between consecutive reports.
GapSample CollectHyzGaps(common::SamplerMode sampler, uint64_t seed_base) {
  const int64_t kBase = 20000;
  const int64_t kPerTrial = 15000;  // < kBase: no collect can trigger
  const int kTrials = 80;
  GapSample out;
  for (int trial = 0; trial < kTrials; ++trial) {
    hyz::HyzOptions options;
    options.mode = hyz::HyzMode::kSampled;
    options.epsilon = 0.5;
    options.delta = 1e-6;
    options.initial_total = kBase;
    options.sampler = sampler;
    options.seed = seed_base + static_cast<uint64_t>(trial);
    hyz::HyzProtocol protocol(1, options);
    out.rate = protocol.current_rate();
    bool reported = false;
    protocol.SetMessageObserver([&](const sim::Network::SentMessage& sent) {
      if (sent.message.type == kHyzReport) reported = true;
      // A collect would end the round and unfreeze the rate, voiding the
      // experiment's premise.
      ASSERT_NE(sent.message.type, kHyzCollect);
    });
    int64_t t = 0;
    int64_t last_report = 0;
    while (t < kPerTrial) {
      reported = false;
      const int64_t consumed =
          protocol.ProcessRun(0, std::min<int64_t>(4096, kPerTrial - t));
      t += consumed;
      if (reported) {
        // Memorylessness makes every inter-report distance (including the
        // one from the trial start) i.i.d. Geometric(rate) + 1.
        out.gaps.push_back(t - last_report);
        last_report = t;
      }
    }
  }
  return out;
}

TEST(SkipEquivalenceTest, HyzFrozenRateGapHistogramsAgree) {
  const GapSample legacy = CollectHyzGaps(common::SamplerMode::kLegacyCoins, 900);
  const GapSample skip = CollectHyzGaps(common::SamplerMode::kGeometricSkip, 900);
  ASSERT_EQ(legacy.rate, skip.rate);  // same options => same frozen rate
  ASSERT_GT(legacy.gaps.size(), 1000u);
  ASSERT_GT(skip.gaps.size(), 1000u);

  // Bin edges at fractions of the geometric mean 1/rate; the tail bin
  // (>= 3 means) still expects ~5% of the mass.
  const double mean = 1.0 / legacy.rate;
  const double edges[] = {0.125 * mean, 0.25 * mean, 0.5 * mean, 0.75 * mean,
                          mean,         1.5 * mean,  2.0 * mean, 3.0 * mean};
  const int kBins = 9;
  auto histogram = [&](const std::vector<int64_t>& gaps) {
    std::vector<double> counts(kBins, 0.0);
    for (const int64_t gap : gaps) {
      int bin = 0;
      while (bin < kBins - 1 && static_cast<double>(gap) > edges[bin]) ++bin;
      counts[static_cast<size_t>(bin)] += 1.0;
    }
    return counts;
  };
  const auto a = histogram(legacy.gaps);
  const auto b = histogram(skip.gaps);
  const double na = static_cast<double>(legacy.gaps.size());
  const double nb = static_cast<double>(skip.gaps.size());
  const double k_ab = std::sqrt(nb / na);
  double chi2 = 0.0;
  for (int bin = 0; bin < kBins; ++bin) {
    const size_t i = static_cast<size_t>(bin);
    if (a[i] + b[i] == 0.0) continue;
    const double diff = k_ab * a[i] - b[i] / k_ab;
    chi2 += diff * diff / (a[i] + b[i]);
  }
  // df = 8; the 0.999 quantile is 26.1. Fixed seeds, so this is a
  // deterministic regression check, not a flaky statistical one.
  EXPECT_LT(chi2, 30.0);

  // The pooled means must agree too (a location shift could in principle
  // slip past a coarse histogram).
  auto mean_of = [](const std::vector<int64_t>& gaps) {
    double sum = 0.0;
    for (const int64_t gap : gaps) sum += static_cast<double>(gap);
    return sum / static_cast<double>(gaps.size());
  };
  const double ma = mean_of(legacy.gaps);
  const double mb = mean_of(skip.gaps);
  // stderr of a geometric mean ~ mean/sqrt(n) ~ 546/sqrt(2000) ~ 12.
  EXPECT_NEAR(ma, mb, 4.0 * mean / std::sqrt(std::min(na, nb)));
}

// ---- (2) Deterministic HYZ: coin-free, so bit-exact either way ------------

TEST(SkipEquivalenceTest, DeterministicHyzTranscriptIdenticalAcrossSamplers) {
  struct Sent {
    bool to_coordinator;
    int site_id;
    int type;
    int64_t u;
    bool operator==(const Sent&) const = default;
  };
  auto run = [](common::SamplerMode sampler) {
    hyz::HyzOptions options;
    options.mode = hyz::HyzMode::kDeterministic;
    options.epsilon = 0.1;
    options.delta = 1e-6;
    options.seed = 42;
    options.sampler = sampler;
    hyz::HyzProtocol protocol(3, options);
    std::vector<Sent> transcript;
    protocol.SetMessageObserver([&](const sim::Network::SentMessage& sent) {
      transcript.push_back({sent.to_coordinator, sent.site_id,
                            sent.message.type, sent.message.u});
    });
    for (int64_t t = 0; t < (1 << 14); ++t) {
      protocol.ProcessUpdate(static_cast<int>(t % 3), 1.0);
    }
    return transcript;
  };
  const auto legacy = run(common::SamplerMode::kLegacyCoins);
  const auto skip = run(common::SamplerMode::kGeometricSkip);
  ASSERT_FALSE(legacy.empty());
  EXPECT_EQ(legacy, skip);
}

// ---- (3) Pooled message counts on bench-style configurations --------------

struct Pooled {
  double mean = 0.0;
  double stderr_mean = 0.0;
  int64_t violations = 0;
};

Pooled Summarize(const std::vector<double>& samples) {
  Pooled out;
  const double n = static_cast<double>(samples.size());
  for (const double s : samples) out.mean += s;
  out.mean /= n;
  double ss = 0.0;
  for (const double s : samples) ss += (s - out.mean) * (s - out.mean);
  out.stderr_mean = std::sqrt(ss / (n - 1.0) / n);
  return out;
}

void ExpectWithinBand(const Pooled& a, const Pooled& b) {
  const double band = 4.0 * std::sqrt(a.stderr_mean * a.stderr_mean +
                                      b.stderr_mean * b.stderr_mean);
  const double slack = 0.02 * std::max(a.mean, b.mean);
  EXPECT_NEAR(a.mean, b.mean, std::max(band, slack))
      << "legacy mean " << a.mean << " +- " << a.stderr_mean << ", skip mean "
      << b.mean << " +- " << b.stderr_mean;
}

Pooled RunCounterTrials(common::SamplerMode sampler, int num_sites,
                        double epsilon,
                        const std::function<std::vector<double>(int)>& stream,
                        int trials) {
  std::vector<double> messages;
  Pooled out;
  for (int trial = 0; trial < trials; ++trial) {
    core::CounterOptions options = testing::DefaultOptions(
        0, epsilon, 1000 + static_cast<uint64_t>(trial) * 7919);
    const auto values = stream(trial);
    options.horizon_n = static_cast<int64_t>(values.size());
    options.sampler = sampler;
    const auto result = testing::RunCounter(values, num_sites, options);
    messages.push_back(static_cast<double>(result.messages));
    out.violations += result.violation_steps;
  }
  const Pooled stats = Summarize(messages);
  out.mean = stats.mean;
  out.stderr_mean = stats.stderr_mean;
  return out;
}

TEST(SkipEquivalenceTest, MultisiteDriftMessageMeansAgree) {
  // E2-style: k = 8 sites, drifting Bernoulli stream.
  const auto stream = [](int trial) {
    return streams::BernoulliStream(1 << 14, 0.5,
                                    200 + static_cast<uint64_t>(trial));
  };
  const auto legacy =
      RunCounterTrials(common::SamplerMode::kLegacyCoins, 8, 0.2, stream, 12);
  const auto skip =
      RunCounterTrials(common::SamplerMode::kGeometricSkip, 8, 0.2, stream, 12);
  ExpectWithinBand(legacy, skip);
}

TEST(SkipEquivalenceTest, AdversarialSawtoothMessageMeansAgree) {
  // E8-style: deterministic zero-crossing sawtooth; the only randomness is
  // the protocol's own coins.
  const auto stream = [](int) { return streams::SawtoothStream(1 << 13, 64); };
  const auto legacy =
      RunCounterTrials(common::SamplerMode::kLegacyCoins, 4, 0.25, stream, 12);
  const auto skip =
      RunCounterTrials(common::SamplerMode::kGeometricSkip, 4, 0.25, stream, 12);
  ExpectWithinBand(legacy, skip);
}

TEST(SkipEquivalenceTest, MonotonicHyzMessageMeansAgree) {
  // E11-style: native HYZ (kSampled) on an all-ones stream.
  const int64_t n = 1 << 14;
  const std::vector<double> stream(static_cast<size_t>(n), 1.0);
  auto run = [&](common::SamplerMode sampler) {
    std::vector<double> messages;
    for (int trial = 0; trial < 12; ++trial) {
      hyz::HyzOptions options;
      options.epsilon = 0.1;
      options.delta = 1e-6;
      options.seed = 4500 + static_cast<uint64_t>(trial);
      options.sampler = sampler;
      hyz::HyzProtocol protocol(8, options);
      sim::RoundRobinAssignment psi(8);
      sim::TrackingOptions tracking;
      tracking.epsilon = 1.0;  // per-round guarantee only; don't gate here
      const auto result = sim::RunTracking(stream, &psi, &protocol, tracking);
      messages.push_back(static_cast<double>(result.messages));
    }
    return Summarize(messages);
  };
  ExpectWithinBand(run(common::SamplerMode::kLegacyCoins),
                   run(common::SamplerMode::kGeometricSkip));
}

}  // namespace
}  // namespace nmc
