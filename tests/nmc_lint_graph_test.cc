// Include-graph tests over the miniature tree in
// tools/nmc_lint/testdata/layers/: a three-layer spec (base < mid < top,
// depth budget 3) with one upward include, one two-file cycle, and one
// too-deep chain. Findings are asserted exactly — rule, file, and line.
#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "nmc_lint/include_graph.h"
#include "nmc_lint/lint.h"

namespace nmc::lint {
namespace {

const char* kTreeRoot = NMC_LINT_FIXTURE_DIR "/layers";

const std::vector<std::string> kFiles = {
    "base/b.h",     "base/up.h",    "mid/m.h",      "mid/cyc_a.h",
    "mid/cyc_b.h",  "top/deep0.h",  "top/deep1.h",  "top/deep2.h",
    "top/deep3.h",  "top/deep4.h",
};

LayerSpec LoadSpec() {
  LayerSpec spec;
  std::string error;
  EXPECT_TRUE(LoadLayerSpec(std::string(kTreeRoot) + "/spec.txt", &spec,
                            &error))
      << error;
  return spec;
}

TEST(NmcLintGraphTest, BuildsResolvedEdges) {
  const IncludeGraph graph = BuildIncludeGraph(kTreeRoot, kFiles);
  ASSERT_EQ(graph.edges.size(), kFiles.size());
  // base/b.h has no includes; mid/m.h resolves its single include to
  // base/b.h at the directive's line.
  EXPECT_TRUE(graph.edges.at("base/b.h").empty());
  ASSERT_EQ(graph.edges.at("mid/m.h").size(), 1u);
  EXPECT_EQ(graph.edges.at("mid/m.h")[0], (IncludeRef{"base/b.h", 3}));
  // System includes and unresolvable paths never make edges (the fixture
  // has none, so every edge target is one of the listed files).
  for (const auto& [from, refs] : graph.edges) {
    for (const IncludeRef& ref : refs) {
      EXPECT_NE(std::find(kFiles.begin(), kFiles.end(), ref.target),
                kFiles.end())
          << from << " -> " << ref.target;
    }
  }
}

TEST(NmcLintGraphTest, ParsesSpec) {
  const LayerSpec spec = LoadSpec();
  EXPECT_EQ(spec.depth_budget, 3);
  ASSERT_EQ(spec.layers.size(), 3u);
  EXPECT_EQ(spec.layers[0], std::vector<std::string>{"base"});
  EXPECT_EQ(spec.layers[2], std::vector<std::string>{"top"});
}

TEST(NmcLintGraphTest, RejectsMalformedSpecs) {
  LayerSpec spec;
  std::string error;
  EXPECT_FALSE(ParseLayerSpec("", &spec, &error));
  EXPECT_FALSE(ParseLayerSpec("layer\n", &spec, &error));
  EXPECT_FALSE(ParseLayerSpec("depth_budget nope\nlayer a\n", &spec, &error));
  EXPECT_FALSE(ParseLayerSpec("floor a b\n", &spec, &error));
  EXPECT_TRUE(ParseLayerSpec("# ok\nlayer a/ b\n", &spec, &error)) << error;
  EXPECT_EQ(spec.layers[0], (std::vector<std::string>{"a", "b"}));
}

TEST(NmcLintGraphTest, FindsExactlyTheSeededViolations) {
  const IncludeGraph graph = BuildIncludeGraph(kTreeRoot, kFiles);
  const std::vector<Finding> findings = CheckIncludeGraph(graph, LoadSpec());

  std::vector<std::string> got;
  for (const Finding& f : findings) {
    got.push_back(f.file + ":" + std::to_string(f.line) + ":" + f.rule);
  }
  const std::vector<std::string> want = {
      "base/up.h:3:LAYERING_VIOLATION",  // base may not include mid
      "mid/cyc_b.h:3:NO_INCLUDE_CYCLES",  // cyc_a <-> cyc_b back edge
      "top/deep0.h:3:INCLUDE_DEPTH",      // chain of 4 > budget 3
  };
  EXPECT_EQ(got, want);

  // The messages carry the full evidence: the cycle path and the chain.
  for (const Finding& f : findings) {
    if (f.rule == "NO_INCLUDE_CYCLES") {
      EXPECT_NE(f.message.find(
                    "mid/cyc_a.h -> mid/cyc_b.h -> mid/cyc_a.h"),
                std::string::npos)
          << f.message;
    }
    if (f.rule == "INCLUDE_DEPTH") {
      EXPECT_NE(f.message.find("top/deep0.h -> top/deep1.h"),
                std::string::npos)
          << f.message;
    }
  }
}

TEST(NmcLintGraphTest, DepthBudgetBoundaryIsInclusive) {
  // deep1's chain is exactly the budget (3 edges to deep4) and must pass.
  const IncludeGraph graph = BuildIncludeGraph(
      kTreeRoot, {"top/deep1.h", "top/deep2.h", "top/deep3.h", "top/deep4.h"});
  const std::vector<Finding> findings = CheckIncludeGraph(graph, LoadSpec());
  EXPECT_TRUE(findings.empty());
}

TEST(NmcLintGraphTest, SameModuleIncludesAreFree) {
  // The cycle pair lives inside one module; with the cycle files removed,
  // mid/m.h -> base/b.h is a legal downward edge and nothing fires.
  const IncludeGraph graph =
      BuildIncludeGraph(kTreeRoot, {"base/b.h", "mid/m.h"});
  EXPECT_TRUE(CheckIncludeGraph(graph, LoadSpec()).empty());
}

}  // namespace
}  // namespace nmc::lint
