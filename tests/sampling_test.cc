#include "core/sampling.h"

#include <cmath>

#include <gtest/gtest.h>

namespace nmc::core {
namespace {

TEST(RandomWalkRateTest, ClampsToOneNearZero) {
  EXPECT_DOUBLE_EQ(RandomWalkRate(0.0, 0.1, 1024, 2.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(RandomWalkRate(1.0, 0.1, 1024, 2.0, 1.0), 1.0);
}

TEST(RandomWalkRateTest, MatchesFormulaForLargeEstimate) {
  const double s = 5000.0, eps = 0.1;
  const int64_t n = 1 << 16;
  const double expected = 2.0 * std::log(static_cast<double>(n)) /
                          ((eps * s) * (eps * s));
  EXPECT_NEAR(RandomWalkRate(s, eps, n, 2.0, 1.0), expected, 1e-15);
}

TEST(RandomWalkRateTest, SymmetricInSign) {
  EXPECT_DOUBLE_EQ(RandomWalkRate(4000.0, 0.1, 1024, 2.0, 1.0),
                   RandomWalkRate(-4000.0, 0.1, 1024, 2.0, 1.0));
}

TEST(RandomWalkRateTest, DecreasesQuadraticallyInEstimate) {
  const double r1 = RandomWalkRate(2000.0, 0.1, 1024, 2.0, 1.0);
  const double r2 = RandomWalkRate(4000.0, 0.1, 1024, 2.0, 1.0);
  EXPECT_NEAR(r1 / r2, 4.0, 1e-9);
}

TEST(RandomWalkRateTest, BetaControlsLogExponent) {
  const double r1 = RandomWalkRate(5000.0, 0.1, 1 << 16, 1.0, 1.0);
  const double r2 = RandomWalkRate(5000.0, 0.1, 1 << 16, 1.0, 2.0);
  EXPECT_NEAR(r2 / r1, std::log(static_cast<double>(1 << 16)), 1e-9);
}

TEST(FbmRateTest, DeltaTwoMatchesRandomWalkUpToLogPower) {
  // With delta = 2, eq. (2) has log^{2} while RandomWalkRate(beta=2) has
  // log^2 as well: the laws coincide when alpha matches.
  const double s = 3000.0, eps = 0.1;
  const int64_t n = 1 << 14;
  EXPECT_NEAR(FbmRate(s, eps, n, 2.0, 3.0),
              RandomWalkRate(s, eps, n, 3.0, 2.0), 1e-15);
}

TEST(FbmRateTest, SmallerDeltaSamplesMore) {
  // Lower delta (heavier long-range dependence allowed) keeps the rate
  // higher at the same |S|.
  const double s = 10000.0, eps = 0.1;
  const int64_t n = 1 << 16;
  EXPECT_GT(FbmRate(s, eps, n, 1.25, 2.0), FbmRate(s, eps, n, 2.0, 2.0));
}

TEST(FbmRateTest, ClampsNearZero) {
  EXPECT_DOUBLE_EQ(FbmRate(0.0, 0.1, 1024, 1.5, 2.0), 1.0);
}

TEST(DriftGuardRateTest, OneAtTimeZero) {
  EXPECT_DOUBLE_EQ(DriftGuardRate(0, 0.1, 1024, 1.0), 1.0);
}

TEST(DriftGuardRateTest, DecaysAsOneOverT) {
  const double r1 = DriftGuardRate(1000, 0.1, 1 << 16, 1.0);
  const double r2 = DriftGuardRate(2000, 0.1, 1 << 16, 1.0);
  EXPECT_NEAR(r1 / r2, 2.0, 1e-9);
}

TEST(DriftGuardRateTest, TotalCostIsLogarithmic) {
  // Sum over t of the guard rate ~ (log n)^2 / eps: tiny next to sqrt(n).
  const int64_t n = 1 << 16;
  double total = 0.0;
  for (int64_t t = 1; t <= n; ++t) total += DriftGuardRate(t, 0.1, n, 1.0);
  const double log_n = std::log(static_cast<double>(n));
  EXPECT_LT(total, 2.0 * log_n * log_n / 0.1);
}

}  // namespace
}  // namespace nmc::core
