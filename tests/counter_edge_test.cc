// Edge-case coverage for the Non-monotonic Counter: degenerate streams,
// extreme parameters, and diagnostics consistency.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/nonmonotonic_counter.h"
#include "sim/assignment.h"
#include "sim/harness.h"
#include "streams/bernoulli.h"
#include "test_util.h"

namespace nmc::core {
namespace {

using nmc::testing::DefaultOptions;
using nmc::testing::RunCounter;

TEST(CounterEdgeTest, SingleUpdateStream) {
  core::NonMonotonicCounter counter(3, DefaultOptions(1, 0.1, 1));
  counter.ProcessUpdate(2, -1.0);
  EXPECT_DOUBLE_EQ(counter.Estimate(), -1.0);
  EXPECT_GT(counter.stats().total(), 0);
}

TEST(CounterEdgeTest, AllZeroValuesStayExact) {
  // S_t == 0 throughout: the guarantee demands an exact 0 estimate, and
  // the protocol must not blow up (rate clamps to 1 near zero).
  const std::vector<double> stream(1000, 0.0);
  core::NonMonotonicCounter counter(4, DefaultOptions(1000, 0.1, 2));
  sim::RoundRobinAssignment psi(4);
  for (int64_t t = 0; t < 1000; ++t) {
    counter.ProcessUpdate(psi.NextSite(t, 0.0), 0.0);
    ASSERT_DOUBLE_EQ(counter.Estimate(), 0.0);
  }
}

TEST(CounterEdgeTest, VeryLooseEpsilonStillTracks) {
  const int64_t n = 1 << 14;
  const auto stream = streams::BernoulliStream(n, 0.0, 3);
  const auto result = RunCounter(stream, 2, DefaultOptions(n, 0.9, 4));
  EXPECT_EQ(result.violation_steps, 0);
}

TEST(CounterEdgeTest, VeryTightEpsilonDegradesToNearExact) {
  // eps so small the rate never leaves 1: cost == the straight floor but
  // the tracking is still correct.
  const int64_t n = 4096;
  const auto stream = streams::BernoulliStream(n, 0.0, 5);
  const auto result = RunCounter(stream, 2, DefaultOptions(n, 0.001, 6));
  EXPECT_EQ(result.violation_steps, 0);
  EXPECT_EQ(result.messages, 2 * n);
}

TEST(CounterEdgeTest, HorizonOneIsLegal) {
  core::CounterOptions options = DefaultOptions(1, 0.1, 7);
  core::NonMonotonicCounter counter(1, options);
  counter.ProcessUpdate(0, 1.0);
  EXPECT_DOUBLE_EQ(counter.Estimate(), 1.0);
}

TEST(CounterEdgeTest, ManySitesFewUpdates) {
  // k >> n: every site sees at most one update; the straight stage keeps
  // the coordinator exact.
  core::NonMonotonicCounter counter(64, DefaultOptions(16, 0.1, 8));
  double sum = 0.0;
  for (int t = 0; t < 16; ++t) {
    const double v = (t % 3 == 0) ? -1.0 : 1.0;
    counter.ProcessUpdate(t * 4 % 64, v);
    sum += v;
    ASSERT_DOUBLE_EQ(counter.Estimate(), sum);
  }
}

TEST(CounterEdgeTest, DiagnosticsAreConsistent) {
  const int64_t n = 1 << 14;
  const auto stream = streams::BernoulliStream(n, 0.6, 9);
  core::CounterOptions options = DefaultOptions(n, 0.1, 10);
  options.drift_mode = DriftMode::kUnknownUnitDrift;
  core::NonMonotonicCounter counter(4, options);
  sim::RoundRobinAssignment psi(4);
  for (int64_t t = 0; t < n; ++t) {
    const double v = stream[static_cast<size_t>(t)];
    counter.ProcessUpdate(psi.NextSite(t, v), v);
  }
  const auto diag = counter.diagnostics();
  EXPECT_TRUE(diag.phase2_active);
  EXPECT_GT(diag.phase2_switch_time, 0);
  EXPECT_LE(diag.phase2_switch_time, n);
  EXPECT_GT(diag.straight_reports, 0);  // the walk starts near zero
  EXPECT_GE(diag.stage_switches, 1);
  EXPECT_NE(diag.mu_hat, 0.0);
}

TEST(CounterEdgeTest, DifferentSeedsDifferentCoinsSameGuarantee) {
  // A drifting stream keeps the counter in the SBC stage, where the coins
  // actually fire (a driftless walk at this n never leaves StraightSync,
  // whose cost is deterministic).
  const int64_t n = 1 << 14;
  const auto stream = streams::BernoulliStream(n, 0.4, 11);
  const auto a = RunCounter(stream, 2, DefaultOptions(n, 0.2, 100));
  const auto b = RunCounter(stream, 2, DefaultOptions(n, 0.2, 200));
  EXPECT_EQ(a.violation_steps, 0);
  EXPECT_EQ(b.violation_steps, 0);
  // Different coins: byte-identical cost would indicate the seed is dead.
  EXPECT_NE(a.messages, b.messages);
}

TEST(CounterEdgeTest, StageThrashNearBoundaryStaysCorrect) {
  // Hold |S| close to the SBC/StraightSync boundary so the stage flips
  // repeatedly; correctness must not depend on stage stability.
  const int64_t n = 1 << 14;
  const double epsilon = 0.25;
  core::CounterOptions options = DefaultOptions(n, epsilon, 12);
  core::NonMonotonicCounter counter(2, options);
  sim::RoundRobinAssignment psi(2);
  // Climb to ~the boundary, then oscillate ±1 around it.
  double sum = 0.0;
  double max_rel_err = 0.0;
  for (int64_t t = 0; t < n; ++t) {
    double v;
    if (sum < 120.0) {
      v = 1.0;
    } else {
      v = (t % 2 == 0) ? 1.0 : -1.0;
    }
    counter.ProcessUpdate(psi.NextSite(t, v), v);
    sum += v;
    if (std::fabs(sum) >= 1.0) {
      max_rel_err = std::max(
          max_rel_err, std::fabs(counter.Estimate() - sum) / std::fabs(sum));
    }
  }
  EXPECT_LE(max_rel_err, epsilon);
}

TEST(CounterEdgeTest, HarnessCurveRecordsCounterTrajectory) {
  const int64_t n = 1 << 13;
  const auto stream = streams::BernoulliStream(n, 0.3, 13);
  core::NonMonotonicCounter counter(2, DefaultOptions(n, 0.1, 14));
  sim::RoundRobinAssignment psi(2);
  sim::TrackingOptions tracking;
  tracking.epsilon = 0.1;
  tracking.curve_points = 32;
  const auto result = sim::RunTracking(stream, &psi, &counter, tracking);
  ASSERT_EQ(result.curve.size(), 32u);
  for (const auto& point : result.curve) {
    EXPECT_NEAR(point.estimate, point.sum,
                0.1 * std::fabs(point.sum) + 1e-9);
  }
}

TEST(CounterEdgeDeathTest, InvalidParametersAbort) {
  core::CounterOptions bad_eps = DefaultOptions(100, 0.1, 15);
  bad_eps.epsilon = 0.0;
  EXPECT_DEATH(core::NonMonotonicCounter(2, bad_eps), "NMC_CHECK");
  core::CounterOptions bad_horizon = DefaultOptions(100, 0.1, 16);
  bad_horizon.horizon_n = 0;
  EXPECT_DEATH(core::NonMonotonicCounter(2, bad_horizon), "NMC_CHECK");
}

TEST(CounterEdgeDeathTest, OutOfRangeSiteAborts) {
  core::NonMonotonicCounter counter(2, DefaultOptions(100, 0.1, 17));
  EXPECT_DEATH(counter.ProcessUpdate(2, 1.0), "NMC_CHECK");
  EXPECT_DEATH(counter.ProcessUpdate(-1, 1.0), "NMC_CHECK");
}

}  // namespace
}  // namespace nmc::core
