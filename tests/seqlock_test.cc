#include "common/seqlock.h"

#include <atomic>
#include <cstdint>
#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace nmc::common {
namespace {

struct Pair {
  uint64_t a = 0;
  uint64_t b = 0;
};

TEST(SeqlockTest, GenerationZeroHoldsDefaultValue) {
  Seqlock<Pair> slot;
  EXPECT_EQ(slot.generation(), 0u);
  Pair out{99, 99};
  ASSERT_TRUE(slot.TryRead(&out));
  EXPECT_EQ(out.a, 0u);
  EXPECT_EQ(out.b, 0u);
}

TEST(SeqlockTest, PublishReadRoundTrip) {
  Seqlock<Pair> slot;
  for (uint64_t i = 1; i <= 100; ++i) {
    slot.Publish(Pair{i, i * i});
    EXPECT_EQ(slot.generation(), i);
    const Pair out = slot.Read();
    EXPECT_EQ(out.a, i);
    EXPECT_EQ(out.b, i * i);
  }
}

// Loom-style deterministic interleaving: step a write through every one of
// its intermediate states with the manual hooks and assert a concurrent
// TryRead refuses each torn state and accepts only the quiescent ones.
// This is the schedule a preempted writer exposes, pinned determinstically
// instead of hoped-for under load.
TEST(SeqlockTest, TryReadRefusesEveryTornWriteState) {
  Seqlock<Pair> slot;
  slot.Publish(Pair{1, 2});
  Pair out{0, 0};

  // Quiescent: readable.
  ASSERT_TRUE(slot.TryRead(&out));
  EXPECT_EQ(out.a, 1u);

  // In-flight marker set, no words written yet: refused.
  slot.WriteBegin();
  EXPECT_FALSE(slot.TryRead(&out));

  // Half the payload written — the canonical torn state {3, 2}: refused.
  Pair next{3, 4};
  uint64_t words[Seqlock<Pair>::kWords];
  std::memcpy(words, &next, sizeof(next));
  slot.StoreWord(0, words[0]);
  EXPECT_FALSE(slot.TryRead(&out));

  // All words written but the write not yet completed: still refused.
  slot.StoreWord(1, words[1]);
  EXPECT_FALSE(slot.TryRead(&out));

  // Completed: readable, and never the torn {3, 2}.
  slot.WriteEnd();
  ASSERT_TRUE(slot.TryRead(&out));
  EXPECT_EQ(out.a, 3u);
  EXPECT_EQ(out.b, 4u);
  EXPECT_EQ(slot.generation(), 2u);

  // The refused attempts must not have leaked partial words into *out:
  // out was only assigned by successful reads above.
}

TEST(SeqlockTest, TornAttemptLeavesOutUntouched) {
  Seqlock<Pair> slot;
  slot.Publish(Pair{7, 8});
  slot.WriteBegin();
  Pair out{123, 456};
  EXPECT_FALSE(slot.TryRead(&out));
  EXPECT_EQ(out.a, 123u) << "a refused read must not write through *out";
  EXPECT_EQ(out.b, 456u);
  slot.WriteEnd();
}

// Threaded invariant stress: the writer publishes only pairs with
// b == 2 * a + 1; any snapshot violating that invariant is a torn read
// served as consistent — the exact bug the seqlock exists to prevent.
// TSan (CI) additionally checks the relaxed-atomic payload protocol is
// formally race-free.
TEST(SeqlockTest, ConcurrentReadersNeverObserveTornPairs) {
  Seqlock<Pair> slot;
  std::atomic<bool> done{false};
  std::atomic<int64_t> snapshots{0};
  std::atomic<bool> violation{false};
  constexpr int kReaders = 4;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&slot, &done, &violation, &snapshots]() {
      uint64_t last_a = 0;
      while (!done.load(std::memory_order_acquire)) {
        Pair out;
        if (!slot.TryRead(&out)) continue;
        if (out.a == 0) continue;  // generation 0: the default {0, 0}
        if (out.b != 2 * out.a + 1 || out.a < last_a) {
          violation.store(true, std::memory_order_relaxed);
          return;
        }
        last_a = out.a;
        snapshots.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Keep publishing until the readers have collectively landed a real
  // sample (self-pacing: on a single core the writer can otherwise finish
  // any fixed publish count before a reader is ever scheduled), with a
  // generous cap so a wedged reader cannot hang the test.
  uint64_t published = 0;
  while (snapshots.load(std::memory_order_relaxed) < 200 &&
         published < 5000000 && !violation.load(std::memory_order_relaxed)) {
    ++published;
    slot.Publish(Pair{published, 2 * published + 1});
    if (published % 64 == 0) std::this_thread::yield();
  }
  done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(slot.generation(), published);
  EXPECT_GT(snapshots.load(), 0) << "readers should land snapshots";
}

// The published struct of the runtime (generation + double estimate) must
// round-trip through the word copies bit-exactly, including NaN payloads
// and signed zero.
TEST(SeqlockTest, DoublePayloadRoundTripsBitExactly) {
  struct Published {
    int64_t generation = 0;
    double estimate = 0.0;
  };
  Seqlock<Published> slot;
  const double values[] = {0.0, -0.0, 1.0 / 3.0, -1e308,
                           std::numeric_limits<double>::quiet_NaN()};
  int64_t generation = 0;
  for (const double value : values) {
    slot.Publish(Published{++generation, value});
    const Published out = slot.Read();
    EXPECT_EQ(out.generation, generation);
    uint64_t want, got;
    std::memcpy(&want, &value, sizeof(want));
    std::memcpy(&got, &out.estimate, sizeof(got));
    EXPECT_EQ(got, want);
  }
}

}  // namespace
}  // namespace nmc::common
