#include "sim/harness.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "sim/protocol.h"

namespace nmc::sim {
namespace {

// A protocol whose estimate is exact times a configurable bias; sends a
// fake message every `message_every` updates so the harness has stats to
// record.
class FakeProtocol : public Protocol {
 public:
  FakeProtocol(int num_sites, double bias, int64_t message_every)
      : num_sites_(num_sites), bias_(bias), message_every_(message_every) {}

  int num_sites() const override { return num_sites_; }

  void ProcessUpdate(int /*site_id*/, double value) override {
    sum_ += value;
    ++updates_;
    if (updates_ % message_every_ == 0) stats_.site_to_coordinator += 1;
  }

  double Estimate() const override { return sum_ * bias_; }

  const MessageStats& stats() const override { return stats_; }

 private:
  int num_sites_;
  double bias_;
  int64_t message_every_;
  double sum_ = 0.0;
  int64_t updates_ = 0;
  MessageStats stats_;
};

std::vector<double> UpDownStream() {
  // Climbs to 50 then back to 0, twice.
  std::vector<double> stream;
  for (int rep = 0; rep < 2; ++rep) {
    for (int i = 0; i < 50; ++i) stream.push_back(1.0);
    for (int i = 0; i < 50; ++i) stream.push_back(-1.0);
  }
  return stream;
}

TEST(HarnessTest, ExactProtocolHasNoViolations) {
  const auto stream = UpDownStream();
  FakeProtocol protocol(2, 1.0, 10);
  RoundRobinAssignment psi(2);
  TrackingOptions options;
  options.epsilon = 0.1;
  const TrackingResult result = RunTracking(stream, &psi, &protocol, options);
  EXPECT_EQ(result.n, 200);
  EXPECT_EQ(result.violation_steps, 0);
  EXPECT_FALSE(result.any_violation());
  EXPECT_EQ(result.max_rel_error, 0.0);
  EXPECT_EQ(result.messages, 20);
  EXPECT_DOUBLE_EQ(result.final_sum, 0.0);
  EXPECT_DOUBLE_EQ(result.final_estimate, 0.0);
}

TEST(HarnessTest, BiasWithinEpsilonIsAccepted) {
  const auto stream = UpDownStream();
  FakeProtocol protocol(1, 1.05, 1000);
  RoundRobinAssignment psi(1);
  TrackingOptions options;
  options.epsilon = 0.1;
  const TrackingResult result = RunTracking(stream, &psi, &protocol, options);
  EXPECT_EQ(result.violation_steps, 0);
  EXPECT_NEAR(result.max_rel_error, 0.05, 1e-9);
}

TEST(HarnessTest, BiasBeyondEpsilonViolatesAtEveryNonzeroStep) {
  const auto stream = UpDownStream();
  FakeProtocol protocol(1, 1.5, 1000);
  RoundRobinAssignment psi(1);
  TrackingOptions options;
  options.epsilon = 0.1;
  const TrackingResult result = RunTracking(stream, &psi, &protocol, options);
  // All steps except those with S == 0 (bias * 0 == 0) violate.
  int64_t zero_steps = 0;
  double sum = 0.0;
  for (double v : stream) {
    sum += v;
    if (sum == 0.0) ++zero_steps;
  }
  EXPECT_EQ(result.violation_steps, result.n - zero_steps);
  EXPECT_NEAR(result.max_rel_error, 0.5, 1e-9);
}

TEST(HarnessTest, RelErrorFloorExcludesSmallSums) {
  const auto stream = UpDownStream();
  FakeProtocol protocol(1, 1.2, 1000);
  RoundRobinAssignment psi(1);
  TrackingOptions options;
  options.epsilon = 0.5;  // bias never violates
  options.rel_error_floor = 1e9;  // excludes everything
  const TrackingResult result = RunTracking(stream, &psi, &protocol, options);
  EXPECT_EQ(result.violation_steps, 0);
  EXPECT_EQ(result.max_rel_error, 0.0);
}

TEST(HarnessTest, CurveSamplingProducesRequestedDensity) {
  const auto stream = UpDownStream();  // n = 200
  FakeProtocol protocol(1, 1.0, 10);
  RoundRobinAssignment psi(1);
  TrackingOptions options;
  options.epsilon = 0.1;
  options.curve_points = 20;
  const TrackingResult result = RunTracking(stream, &psi, &protocol, options);
  ASSERT_EQ(result.curve.size(), 20u);
  EXPECT_EQ(result.curve.front().t, 10);
  EXPECT_EQ(result.curve.back().t, 200);
  // Messages are non-decreasing along the curve.
  for (size_t i = 1; i < result.curve.size(); ++i) {
    EXPECT_GE(result.curve[i].messages, result.curve[i - 1].messages);
    EXPECT_GT(result.curve[i].t, result.curve[i - 1].t);
  }
}

TEST(HarnessTest, CurveDisabledByDefault) {
  const auto stream = UpDownStream();
  FakeProtocol protocol(1, 1.0, 10);
  RoundRobinAssignment psi(1);
  TrackingOptions options;
  const TrackingResult result = RunTracking(stream, &psi, &protocol, options);
  EXPECT_TRUE(result.curve.empty());
}

}  // namespace
}  // namespace nmc::sim
