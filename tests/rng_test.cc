#include "common/rng.h"

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/statistics.h"

namespace nmc::common {
namespace {

/// Every RngTest seed routes through this test-local factory so the
/// construction site takes its seed from a traceable parameter; a
/// statistical flake is then fixed by varying one literal at the call.
Rng MakeRng(uint64_t seed) { return Rng(seed); }

TEST(RngTest, SameSeedSameSequence) {
  Rng a = MakeRng(42);
  Rng b = MakeRng(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDifferentSequences) {
  Rng a = MakeRng(1);
  Rng b = MakeRng(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() != b.NextU64()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, UniformDoubleRangeAndMean) {
  Rng rng = MakeRng(7);
  RunningStat stat;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.UniformDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    stat.Add(u);
  }
  EXPECT_NEAR(stat.mean(), 0.5, 0.01);
  // Uniform variance is 1/12.
  EXPECT_NEAR(stat.variance(), 1.0 / 12.0, 0.01);
}

TEST(RngTest, UniformIntBoundsInclusive) {
  Rng rng = MakeRng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng = MakeRng(11);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, UniformIntUnbiasedOverPowerOfTwoRange) {
  // Range of 3 exercises the rejection path (2^64 mod 3 != 0).
  Rng rng = MakeRng(13);
  int64_t counts[3] = {0, 0, 0};
  const int n = 90000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(0, 2)];
  for (int64_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 1.0 / 3.0, 0.01);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng = MakeRng(17);
  for (double p : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    int heads = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) heads += rng.Bernoulli(p) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(heads) / n, p, 0.01) << "p=" << p;
  }
}

TEST(RngTest, BernoulliClampsOutOfRange) {
  Rng rng = MakeRng(19);
  EXPECT_FALSE(rng.Bernoulli(-0.5));
  EXPECT_TRUE(rng.Bernoulli(1.5));
}

TEST(RngTest, GaussianMoments) {
  Rng rng = MakeRng(23);
  RunningStat stat;
  for (int i = 0; i < 200000; ++i) stat.Add(rng.Gaussian());
  EXPECT_NEAR(stat.mean(), 0.0, 0.01);
  EXPECT_NEAR(stat.variance(), 1.0, 0.02);
}

TEST(RngTest, GaussianTailMass) {
  Rng rng = MakeRng(29);
  int beyond_two_sigma = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (std::fabs(rng.Gaussian()) > 2.0) ++beyond_two_sigma;
  }
  // P(|Z| > 2) ~ 0.0455.
  EXPECT_NEAR(static_cast<double>(beyond_two_sigma) / n, 0.0455, 0.006);
}

TEST(RngTest, GaussianMeanStddev) {
  Rng rng = MakeRng(31);
  RunningStat stat;
  for (int i = 0; i < 100000; ++i) stat.Add(rng.Gaussian(3.0, 2.0));
  EXPECT_NEAR(stat.mean(), 3.0, 0.05);
  EXPECT_NEAR(stat.stddev(), 2.0, 0.05);
}

TEST(RngTest, GeometricMeanMatchesTheory) {
  Rng rng = MakeRng(37);
  for (double p : {0.1, 0.5, 0.9}) {
    RunningStat stat;
    for (int i = 0; i < 50000; ++i) {
      stat.Add(static_cast<double>(rng.Geometric(p)));
    }
    // E[failures before first success] = (1-p)/p.
    EXPECT_NEAR(stat.mean(), (1.0 - p) / p, 0.1 * (1.0 - p) / p + 0.02)
        << "p=" << p;
  }
}

TEST(RngTest, GeometricWithPOneIsZero) {
  Rng rng = MakeRng(41);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Geometric(1.0), 0);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng = MakeRng(43);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = values;
  rng.Shuffle(&shuffled);
  std::multiset<int> a(values.begin(), values.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ShuffleIsApproximatelyUniform) {
  // Position of element 0 after shuffling [0,1,2,3] should be uniform.
  Rng rng = MakeRng(47);
  int64_t position_counts[4] = {0, 0, 0, 0};
  const int trials = 40000;
  for (int t = 0; t < trials; ++t) {
    std::vector<int> v{0, 1, 2, 3};
    rng.Shuffle(&v);
    for (int i = 0; i < 4; ++i) {
      if (v[static_cast<size_t>(i)] == 0) ++position_counts[i];
    }
  }
  for (int64_t c : position_counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.25, 0.01);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent = MakeRng(53);
  Rng child = parent.Fork();
  // The child stream should not be identical to the parent's continuation.
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextU64() != child.NextU64()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, SignIsPlusMinusOne) {
  Rng rng = MakeRng(59);
  int64_t sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const int s = rng.Sign(0.5);
    ASSERT_TRUE(s == 1 || s == -1);
    sum += s;
  }
  EXPECT_LT(std::fabs(static_cast<double>(sum)) / n, 0.02);
}

}  // namespace
}  // namespace nmc::common
