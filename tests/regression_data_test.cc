#include "streams/regression_data.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/statistics.h"

namespace nmc::streams {
namespace {

TEST(RegressionDataTest, ShapesAndBounds) {
  RegressionDataOptions options;
  options.dim = 3;
  options.feature_scale = 0.5;
  options.seed = 1;
  const auto data = GenerateRegressionData(200, options);
  EXPECT_EQ(data.true_weights.size(), 3u);
  ASSERT_EQ(data.samples.size(), 200u);
  for (const auto& s : data.samples) {
    ASSERT_EQ(s.x.size(), 3u);
    for (double xj : s.x) EXPECT_LE(std::fabs(xj), 0.5);
  }
}

TEST(RegressionDataTest, ResponsesFollowModel) {
  RegressionDataOptions options;
  options.dim = 4;
  options.noise_precision = 100.0;  // noise stddev 0.1
  options.seed = 5;
  const auto data = GenerateRegressionData(5000, options);
  common::RunningStat residuals;
  for (const auto& s : data.samples) {
    double dot = 0.0;
    for (size_t j = 0; j < s.x.size(); ++j) dot += s.x[j] * data.true_weights[j];
    residuals.Add(s.y - dot);
  }
  EXPECT_NEAR(residuals.mean(), 0.0, 0.01);
  EXPECT_NEAR(residuals.stddev(), 0.1, 0.01);
}

TEST(RegressionDataTest, DeterministicInSeed) {
  RegressionDataOptions options;
  options.seed = 9;
  const auto a = GenerateRegressionData(50, options);
  const auto b = GenerateRegressionData(50, options);
  EXPECT_EQ(a.true_weights, b.true_weights);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].x, b.samples[i].x);
    EXPECT_EQ(a.samples[i].y, b.samples[i].y);
  }
}

TEST(RegressionDataTest, DifferentSeedsDiffer) {
  RegressionDataOptions a_options;
  a_options.seed = 1;
  RegressionDataOptions b_options;
  b_options.seed = 2;
  const auto a = GenerateRegressionData(50, a_options);
  const auto b = GenerateRegressionData(50, b_options);
  EXPECT_NE(a.true_weights, b.true_weights);
}

}  // namespace
}  // namespace nmc::streams
