// Tests for the batch_ops kernels (TallySigns / CheckUnitPrefix), with
// emphasis on the run-level short-circuit: whatever path CheckUnitPrefix
// takes, a caller folding max_rel_error with std::max must land on
// exactly the same state the scalar per-item loop produces.

#include "common/batch_ops.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/batch_ops_kernels.h"
#include "common/rng.h"
#include "common/simd_dispatch.h"
#include "gtest/gtest.h"

namespace nmc::common {
namespace {

// The harness's per-item loop, verbatim: the oracle every CheckUnitPrefix
// path (short-circuit or per-item, scalar or SIMD) must reproduce under
// the max-fold contract.
struct RefState {
  double sum = 0.0;
  int64_t violations = 0;
  double max_rel = 0.0;
};

RefState ReferenceLoop(std::span<const double> values, double sum0,
                       double estimate, double epsilon, double slack,
                       double rel_floor, double current_max_rel) {
  RefState ref;
  ref.sum = sum0;
  ref.max_rel = current_max_rel;
  for (const double v : values) {
    ref.sum += v;
    const double abs_error = std::fabs(estimate - ref.sum);
    const double abs_sum = std::fabs(ref.sum);
    if (abs_error > epsilon * abs_sum + slack) ++ref.violations;
    if (abs_sum >= rel_floor) {
      const double rel = abs_error / abs_sum;
      if (rel > ref.max_rel) ref.max_rel = rel;
    }
  }
  return ref;
}

std::vector<double> UnitWalk(uint64_t seed, size_t n, double bias) {
  Rng rng(seed);
  std::vector<double> values(n);
  for (auto& v : values) v = rng.UniformDouble() < bias ? 1.0 : -1.0;
  return values;
}

TEST(BatchOpsTest, TallySignsCountsAndGates) {
  const auto values = UnitWalk(7, 133, 0.6);
  const SignTally tally = TallySigns(values);
  ASSERT_TRUE(tally.all_unit);
  int64_t plus = 0;
  for (double v : values) plus += v == 1.0 ? 1 : 0;
  EXPECT_EQ(tally.plus, plus);
  EXPECT_EQ(tally.minus, static_cast<int64_t>(values.size()) - plus);

  auto tainted = values;
  tainted[71] = 0.5;
  EXPECT_FALSE(TallySigns(tainted).all_unit);
}

TEST(BatchOpsTest, MatchesReferenceLoopAcrossPaths) {
  // Sweep sizes (SIMD bulk + scalar tail splits), biases (walks that do
  // and don't cross zero), estimates (tight and violating), and
  // current_max_rel (0 forces the per-item path; large values invite the
  // short-circuit). Every combination must agree with the scalar oracle
  // after the max-fold.
  for (const size_t n : {1u, 3u, 4u, 7u, 31u, 32u, 100u, 257u}) {
    for (const double bias : {0.5, 0.75, 1.0}) {
      for (const double sum0 : {0.0, 12.0, -40.0, 4096.0}) {
        const auto values = UnitWalk(1000 + n, n, bias);
        const double final_sum = [&] {
          double s = sum0;
          for (double v : values) s += v;
          return s;
        }();
        for (const double estimate :
             {sum0, final_sum, final_sum * 1.1 + 3.0, 0.0}) {
          for (const double current : {0.0, 0.2, 1e9}) {
            const double epsilon = 0.25;
            const double slack = 1e-9;
            const double rel_floor = 1.0;
            PrefixCheckResult prefix;
            ASSERT_TRUE(CheckUnitPrefix(values, sum0, estimate, epsilon,
                                        slack, rel_floor, current, &prefix));
            const RefState ref = ReferenceLoop(values, sum0, estimate,
                                               epsilon, slack, rel_floor,
                                               current);
            EXPECT_EQ(prefix.final_sum, ref.sum)
                << "n=" << n << " bias=" << bias << " est=" << estimate;
            EXPECT_EQ(prefix.violations, ref.violations)
                << "n=" << n << " bias=" << bias << " est=" << estimate;
            EXPECT_EQ(std::max(current, prefix.max_rel_error), ref.max_rel)
                << "n=" << n << " bias=" << bias << " est=" << estimate
                << " current=" << current;
          }
        }
      }
    }
  }
}

TEST(BatchOpsTest, RejectsNonUnitAndNonIntegerSeeds) {
  auto values = UnitWalk(3, 40, 0.5);
  PrefixCheckResult prefix;
  EXPECT_TRUE(CheckUnitPrefix(values, 0.0, 1.0, 0.25, 1e-9, 1.0, 0.0,
                              &prefix));
  values[17] = 0.25;  // fractional item
  EXPECT_FALSE(CheckUnitPrefix(values, 0.0, 1.0, 0.25, 1e-9, 1.0, 0.0,
                               &prefix));
  values[17] = 1.0;
  EXPECT_FALSE(CheckUnitPrefix(values, 0.5, 1.0, 0.25, 1e-9, 1.0, 0.0,
                               &prefix));  // non-integer seed sum
  EXPECT_FALSE(CheckUnitPrefix(values, 0.0, 1.0, 0.25, 1e-9, 0.0, 0.0,
                               &prefix));  // rel_floor must be positive
  EXPECT_FALSE(CheckUnitPrefix(values, 0x1.0p51, 1.0, 0.25, 1e-9, 1.0, 0.0,
                               &prefix));  // seed out of the exact range
}

TEST(BatchOpsTest, ShortCircuitFiresOnSettledTracking) {
  // A settled tracker: large sums, estimate within the envelope, and a
  // current max_rel from the early phase that dominates the run's. The
  // short-circuit must report zero violations and leave the fold alone.
  const auto values = UnitWalk(11, 64, 0.75);
  const double sum0 = 20000.0;
  double final_sum = sum0;
  for (double v : values) final_sum += v;
  const double estimate = final_sum + 5.0;  // well inside 0.25 * 20000
  const double current = 0.5;
  PrefixCheckResult prefix;
  ASSERT_TRUE(CheckUnitPrefix(values, sum0, estimate, 0.25, 1e-9, 1.0,
                              current, &prefix));
  EXPECT_EQ(prefix.violations, 0);
  EXPECT_EQ(prefix.final_sum, final_sum);
  const RefState ref =
      ReferenceLoop(values, sum0, estimate, 0.25, 1e-9, 1.0, current);
  EXPECT_EQ(std::max(current, prefix.max_rel_error), ref.max_rel);
}

TEST(BatchOpsTest, BoundsKernelsMatchScalarOracle) {
  // The dispatched bounds sweep must be bit-identical to the scalar
  // kernel — same final sum, same min/max — for every bulk/tail split.
  for (const size_t n : {4u, 8u, 36u, 128u}) {
    const auto values = UnitWalk(500 + n, n, 0.5);
    for (const double sum0 : {0.0, -3.0, 1000.0}) {
      batch_ops_detail::BoundsState scalar{
          sum0, std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity(), true};
      batch_ops_detail::UnitRunBoundsScalar(values.data(), n, &scalar);
      ASSERT_TRUE(scalar.all_unit);
#if NMC_SIMD_AVX2
      if (ActiveSimdLevel() == SimdLevel::kAvx2) {
        batch_ops_detail::BoundsState simd{
            sum0, std::numeric_limits<double>::infinity(),
            -std::numeric_limits<double>::infinity(), true};
        batch_ops_detail::UnitRunBoundsAvx2(values.data(), n, &simd);
        ASSERT_TRUE(simd.all_unit);
        EXPECT_EQ(simd.sum, scalar.sum);
        EXPECT_EQ(simd.min_sum, scalar.min_sum);
        EXPECT_EQ(simd.max_sum, scalar.max_sum);
      }
#endif
      // Oracle check of the oracle: brute-force min/max.
      double s = sum0;
      double mn = std::numeric_limits<double>::infinity();
      double mx = -mn;
      for (double v : values) {
        s += v;
        mn = std::min(mn, s);
        mx = std::max(mx, s);
      }
      EXPECT_EQ(scalar.sum, s);
      EXPECT_EQ(scalar.min_sum, mn);
      EXPECT_EQ(scalar.max_sum, mx);
    }
  }
}

}  // namespace
}  // namespace nmc::common
