#include "common/geometric_skip.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace nmc::common {
namespace {

/// Every seed in this file routes through a test-local factory whose
/// construction site takes the seed as a traceable parameter; a
/// statistical flake is then fixed by varying one literal at the call.
common::Rng MakeRng(uint64_t seed) { return common::Rng(seed); }

// ---- Legacy mode: bit-exact coin replay ----------------------------------

TEST(GeometricSkipTest, LegacyStepMatchesBernoulliBitwise) {
  GeometricSkip skip(SamplerMode::kLegacyCoins);
  common::Rng rng_skip = MakeRng(123);
  common::Rng rng_ref = MakeRng(123);
  // Varying rates, including the no-draw clamps, must consume the RNG
  // identically to a direct Bernoulli sequence.
  const double rates[] = {0.3, 0.0, 1.0, 0.99, 0.01, 0.5, 1.5, -0.5};
  for (int i = 0; i < 4000; ++i) {
    const double rate = rates[i % 8];
    EXPECT_EQ(skip.Step(&rng_skip, rate), rng_ref.Bernoulli(rate));
  }
  // Same RNG position afterwards: the replay consumed exactly the same
  // draws.
  EXPECT_EQ(rng_skip.NextU64(), rng_ref.NextU64());
}

// ---- Skip mode: distribution ---------------------------------------------

// One-sample chi-square of DrawGap against the Geometric(p) pmf
// P[gap = g] = (1-p)^g * p. Fixed seed, so this is deterministic — the
// generous critical value guards against seed-hunting, not flakiness.
TEST(GeometricSkipTest, GapHistogramMatchesGeometricPmf) {
  const double p = 0.2;
  const int kDraws = 200000;
  const int kBins = 16;  // gaps 0..14 plus pooled tail
  common::Rng rng = MakeRng(2024);
  std::vector<int64_t> counts(kBins, 0);
  for (int i = 0; i < kDraws; ++i) {
    const int64_t gap = GeometricSkip::DrawGap(&rng, p);
    counts[static_cast<size_t>(std::min<int64_t>(gap, kBins - 1))] += 1;
  }
  double chi2 = 0.0;
  double tail_prob = 1.0;
  for (int b = 0; b < kBins; ++b) {
    const double prob =
        b < kBins - 1 ? tail_prob * p : tail_prob;  // last bin pools the tail
    tail_prob *= (1.0 - p);
    const double expected = prob * kDraws;
    ASSERT_GT(expected, 5.0);  // chi-square validity
    const double diff = static_cast<double>(counts[static_cast<size_t>(b)]) -
                        expected;
    chi2 += diff * diff / expected;
  }
  // df = 15; the 0.999 quantile is 37.7.
  EXPECT_LT(chi2, 37.7);
}

TEST(GeometricSkipTest, GapMeanMatchesGeometricMean) {
  const double p = 0.01;
  const int kDraws = 100000;
  common::Rng rng = MakeRng(7);
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    sum += static_cast<double>(GeometricSkip::DrawGap(&rng, p));
  }
  const double mean = sum / kDraws;
  // E[gap] = (1-p)/p = 99; stderr ~ sqrt((1-p))/p/sqrt(N) ~ 0.31.
  EXPECT_NEAR(mean, (1.0 - p) / p, 2.0);
}

// ---- Boundary cases ------------------------------------------------------

TEST(GeometricSkipTest, CertainRateDrawsNoRandomness) {
  common::Rng rng = MakeRng(5);
  common::Rng untouched = MakeRng(5);
  EXPECT_EQ(GeometricSkip::DrawGap(&rng, 1.0), 0);
  EXPECT_EQ(GeometricSkip::DrawGap(&rng, 2.0), 0);
  EXPECT_EQ(rng.NextU64(), untouched.NextU64());  // no draw consumed
}

TEST(GeometricSkipTest, ZeroRateIsInfiniteWithoutRandomness) {
  common::Rng rng = MakeRng(5);
  common::Rng untouched = MakeRng(5);
  EXPECT_EQ(GeometricSkip::DrawGap(&rng, 0.0), GeometricSkip::kInfiniteGap);
  EXPECT_EQ(GeometricSkip::DrawGap(&rng, -1.0), GeometricSkip::kInfiniteGap);
  EXPECT_EQ(rng.NextU64(), untouched.NextU64());
}

TEST(GeometricSkipTest, TinyRateClampsInsteadOfOverflowing) {
  // log(u)/log1p(-p) for p = 1e-300 overflows any int64; the clamp must
  // return the sentinel instead of invoking UB on the cast.
  common::Rng rng = MakeRng(11);
  for (int i = 0; i < 100; ++i) {
    const int64_t gap = GeometricSkip::DrawGap(&rng, 1e-300);
    EXPECT_EQ(gap, GeometricSkip::kInfiniteGap);
  }
  // A small-but-sane rate stays finite and non-negative.
  for (int i = 0; i < 1000; ++i) {
    const int64_t gap = GeometricSkip::DrawGap(&rng, 1e-6);
    EXPECT_GE(gap, 0);
    EXPECT_LT(gap, GeometricSkip::kInfiniteGap);
  }
}

TEST(GeometricSkipTest, EnsureGapMemoMatchesDrawGapBitwise) {
  // EnsureGap memoizes log1p(-rate) across draws; the values must still
  // be bit-identical to the un-memoized DrawGap at every rate change.
  GeometricSkip skip(SamplerMode::kGeometricSkip);
  common::Rng rng_a = MakeRng(31);
  common::Rng rng_b = MakeRng(31);
  const double rates[] = {0.25, 0.25, 0.03, 0.25, 0.9, 0.03};
  for (int i = 0; i < 6000; ++i) {
    const double rate = rates[i % 6];
    skip.EnsureGap(&rng_a, rate);
    EXPECT_EQ(skip.gap(), GeometricSkip::DrawGap(&rng_b, rate));
    skip.Invalidate();
  }
}

// ---- State machine -------------------------------------------------------

TEST(GeometricSkipTest, AdvanceAndTakeCandidateWalkTheGap) {
  GeometricSkip skip;
  common::Rng rng = MakeRng(13);
  for (int run = 0; run < 100; ++run) {
    skip.EnsureGap(&rng, 0.1);
    const int64_t gap = skip.gap();
    const int64_t half = gap / 2;
    skip.Advance(half);
    EXPECT_EQ(skip.gap(), gap - half);
    skip.Advance(gap - half);
    EXPECT_EQ(skip.gap(), 0);
    skip.TakeCandidate();
    EXPECT_FALSE(skip.valid());
  }
}

TEST(GeometricSkipTest, StepSkipModeHeadFrequency) {
  GeometricSkip skip;
  common::Rng rng = MakeRng(17);
  const double p = 0.05;
  const int kSteps = 200000;
  int heads = 0;
  for (int i = 0; i < kSteps; ++i) {
    if (skip.Step(&rng, p)) ++heads;
  }
  // Binomial(200000, 0.05): mean 10000, stddev ~ 97.
  EXPECT_NEAR(static_cast<double>(heads), p * kSteps, 500.0);
}

// ---- RNG-stream independence between sites -------------------------------

TEST(GeometricSkipTest, ForkedSiteStreamsAreIndependent) {
  // Sites draw gaps from forked RNGs; interleaving one site's draws must
  // not perturb another's sequence (each site owns its stream).
  common::Rng seeder_a = MakeRng(99);
  common::Rng seeder_b = MakeRng(99);
  common::Rng site1_solo = seeder_a.Fork();
  common::Rng ignored = seeder_a.Fork();
  (void)ignored;
  common::Rng site1 = seeder_b.Fork();
  common::Rng site2 = seeder_b.Fork();

  std::vector<int64_t> solo, interleaved;
  for (int i = 0; i < 1000; ++i) {
    solo.push_back(GeometricSkip::DrawGap(&site1_solo, 0.1));
  }
  for (int i = 0; i < 1000; ++i) {
    interleaved.push_back(GeometricSkip::DrawGap(&site1, 0.1));
    (void)GeometricSkip::DrawGap(&site2, 0.1);  // interleaved other-site draw
  }
  EXPECT_EQ(solo, interleaved);

  // And the two sites' gap sequences are not correlated copies.
  common::Rng seeder_c = MakeRng(99);
  common::Rng s1 = seeder_c.Fork();
  common::Rng s2 = seeder_c.Fork();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (GeometricSkip::DrawGap(&s1, 0.1) == GeometricSkip::DrawGap(&s2, 0.1)) {
      ++equal;
    }
  }
  // P[equal] = sum p_g^2 = p/(2-p) ~ 0.053 per index; 1000 trials.
  EXPECT_LT(equal, 150);
}

// ---- Bulk gap feed (AttachBatchRng) ---------------------------------------

TEST(GeometricSkipTest, FeedGapHistogramMatchesGeometricPmf) {
  // Gaps drawn through the vectorized bulk feed at a frozen rate must be
  // Geometric(p) exactly like the scalar path (the feed changes the RNG
  // consumption order, never the distribution). Same chi-square as
  // GapHistogramMatchesGeometricPmf, routed through EnsureGapFromFeed.
  const double p = 0.2;
  const int kDraws = 200000;
  const int kBins = 16;
  GeometricSkip skip(SamplerMode::kGeometricSkip);
  BatchRng batch(2024);
  skip.AttachBatchRng(&batch);
  common::Rng unused = MakeRng(1);  // feed-backed EnsureGap never touches it
  std::vector<int64_t> counts(kBins, 0);
  for (int i = 0; i < kDraws; ++i) {
    skip.EnsureGap(&unused, p);
    const int64_t gap = skip.gap();
    counts[static_cast<size_t>(std::min<int64_t>(gap, kBins - 1))] += 1;
    skip.Invalidate();
  }
  double chi2 = 0.0;
  double tail_prob = 1.0;
  for (int b = 0; b < kBins; ++b) {
    const double prob = b < kBins - 1 ? tail_prob * p : tail_prob;
    tail_prob *= (1.0 - p);
    const double expected = prob * kDraws;
    ASSERT_GT(expected, 5.0);
    const double diff = static_cast<double>(counts[static_cast<size_t>(b)]) -
                        expected;
    chi2 += diff * diff / expected;
  }
  // df = 15; the 0.999 quantile is 37.7.
  EXPECT_LT(chi2, 37.7);
  // The scalar RNG really was never consumed.
  common::Rng check = MakeRng(1);
  EXPECT_EQ(unused.NextU64(), check.NextU64());
}

TEST(GeometricSkipTest, FeedRateLadderCostsOneDrawPerFreshRate) {
  // A fresh rate must cost exactly one stream element (no speculative
  // block), and only the second consecutive same-rate request may buy a
  // block. Verified through the BatchRng stream position: a ladder of n
  // distinct rates consumes exactly n elements.
  GeometricSkip skip(SamplerMode::kGeometricSkip);
  BatchRng batch(7);
  BatchRng shadow(7);  // tracks the expected stream position
  skip.AttachBatchRng(&batch);
  common::Rng unused = MakeRng(1);
  const double rates[] = {0.5, 0.25, 0.125, 0.0625, 0.03125};
  for (const double rate : rates) {
    skip.EnsureGap(&unused, rate);
    skip.Invalidate();
    (void)shadow.NextU64();  // one element per fresh rate
  }
  EXPECT_EQ(batch.NextU64(), shadow.NextU64());
}

TEST(GeometricSkipTest, FeedBlockRefillServesRepeatRateFromBlock) {
  // Once a rate repeats, blocks are pre-drawn on the growth schedule
  // (kFeedFirstBlockGaps, ×kFeedBlockGrowth per refill, capped at
  // kFeedBlockGaps) and every request in between is served without
  // further stream traffic. The shadow generator replays the same fills,
  // so matching stream positions prove both the schedule and the served
  // values' provenance.
  GeometricSkip skip(SamplerMode::kGeometricSkip);
  BatchRng batch(13);
  BatchRng shadow(13);
  skip.AttachBatchRng(&batch);
  common::Rng unused = MakeRng(1);
  const double rate = 0.1;
  skip.EnsureGap(&unused, rate);  // fresh rate: single draw
  skip.Invalidate();
  (void)shadow.NextU64();
  int fill = GeometricSkip::kFeedFirstBlockGaps;
  int served = 0;
  std::vector<int64_t> block;
  // Run past the cap so the steady (fill == kFeedBlockGaps) regime is
  // exercised too.
  while (served < 3 * GeometricSkip::kFeedBlockGaps) {
    block.resize(static_cast<size_t>(fill));
    shadow.FillGeometricGaps(std::span<int64_t>(block), rate);
    for (int i = 0; i < fill; ++i) {
      skip.EnsureGap(&unused, rate);  // i == 0 buys the block
      EXPECT_EQ(skip.gap(), block[static_cast<size_t>(i)]);
      skip.Invalidate();
    }
    served += fill;
    fill = std::min(fill * GeometricSkip::kFeedBlockGrowth,
                    GeometricSkip::kFeedBlockGaps);
  }
  EXPECT_EQ(batch.NextU64(), shadow.NextU64());
}

TEST(GeometricSkipTest, LegacyModeIgnoresAttachedFeed) {
  // kLegacyCoins keeps the bit-exact per-coin replay even with a feed
  // attached (sites attach unconditionally on construction in skip mode;
  // the mode decides).
  GeometricSkip skip(SamplerMode::kLegacyCoins);
  BatchRng batch(5);
  skip.AttachBatchRng(&batch);
  common::Rng rng_skip = MakeRng(123);
  common::Rng rng_ref = MakeRng(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(skip.Step(&rng_skip, 0.3), rng_ref.Bernoulli(0.3));
  }
  EXPECT_EQ(rng_skip.NextU64(), rng_ref.NextU64());
  BatchRng untouched(5);
  EXPECT_EQ(batch.NextU64(), untouched.NextU64());
}

}  // namespace
}  // namespace nmc::common
