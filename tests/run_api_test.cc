// The unified transport entry point's contract: RunWithTransport(kSim)
// is the byte-identical continuation of sim::RunTracking, the concurrent
// backends run the same protocol through the same call with one enum
// changed, and the transport-agnostic CheckLinearizable accepts captured
// concurrent runs (and explains itself on a sim result).

#include "runtime/run.h"

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "registry/builtin.h"
#include "runtime/transport.h"
#include "sim/assignment.h"
#include "sim/registry.h"
#include "streams/bernoulli.h"

namespace nmc::runtime {
namespace {

sim::ProtocolParams TestParams(int64_t n) {
  sim::ProtocolParams params;
  params.epsilon = 0.25;
  params.horizon_n = n;
  params.seed = 53;
  return params;
}

std::unique_ptr<sim::Protocol> MakeCounter(int num_sites, int64_t n) {
  registry::RegisterBuiltinProtocols();
  return sim::ProtocolRegistry::Global().Create("counter", num_sites,
                                                TestParams(n));
}

TEST(RunApiTest, ParseTransportKindCoversSockets) {
  TransportKind kind = TransportKind::kSim;
  EXPECT_TRUE(ParseTransportKind("sockets", &kind));
  EXPECT_EQ(kind, TransportKind::kSockets);
  EXPECT_STREQ(TransportKindName(TransportKind::kSockets), "sockets");
}

TEST(RunApiTest, SimPathIsBitIdenticalToDirectRunTracking) {
  const int64_t n = 16384;
  const int k = 4;
  const std::vector<double> stream = streams::BernoulliStream(n, 0.1, 11);
  sim::TrackingOptions tracking;
  tracking.epsilon = 0.25;
  tracking.curve_points = 32;

  const auto direct_protocol = MakeCounter(k, n);
  sim::RoundRobinAssignment direct_psi(k);
  const sim::TrackingResult direct =
      sim::RunTracking(stream, &direct_psi, direct_protocol.get(), tracking);

  const auto unified_protocol = MakeCounter(k, n);
  sim::RoundRobinAssignment unified_psi(k);
  RunConfig config;
  config.protocol = unified_protocol.get();
  config.stream = &stream;
  config.psi = &unified_psi;
  config.tracking = tracking;
  const RunResult unified = RunWithTransport(TransportKind::kSim, config);

  EXPECT_EQ(unified.transport, TransportKind::kSim);
  EXPECT_EQ(unified.tracking.n, direct.n);
  EXPECT_EQ(unified.tracking.messages, direct.messages);
  EXPECT_EQ(unified.tracking.broadcasts, direct.broadcasts);
  EXPECT_EQ(unified.tracking.violation_steps, direct.violation_steps);
  EXPECT_EQ(std::bit_cast<uint64_t>(unified.tracking.final_estimate),
            std::bit_cast<uint64_t>(direct.final_estimate));
  EXPECT_EQ(std::bit_cast<uint64_t>(unified.tracking.final_sum),
            std::bit_cast<uint64_t>(direct.final_sum));
  EXPECT_EQ(std::bit_cast<uint64_t>(unified.tracking.max_rel_error),
            std::bit_cast<uint64_t>(direct.max_rel_error));
  ASSERT_EQ(unified.tracking.curve.size(), direct.curve.size());
}

TEST(RunApiTest, NullPsiDefaultsToRoundRobin) {
  const int64_t n = 4096;
  const int k = 4;
  const std::vector<double> stream = streams::BernoulliStream(n, 0.1, 12);
  sim::TrackingOptions tracking;
  tracking.epsilon = 0.25;

  const auto explicit_protocol = MakeCounter(k, n);
  sim::RoundRobinAssignment psi(k);
  RunConfig explicit_config;
  explicit_config.protocol = explicit_protocol.get();
  explicit_config.stream = &stream;
  explicit_config.psi = &psi;
  explicit_config.tracking = tracking;
  const RunResult with_psi =
      RunWithTransport(TransportKind::kSim, explicit_config);

  const auto defaulted_protocol = MakeCounter(k, n);
  RunConfig defaulted_config;
  defaulted_config.protocol = defaulted_protocol.get();
  defaulted_config.stream = &stream;
  defaulted_config.tracking = tracking;
  const RunResult defaulted =
      RunWithTransport(TransportKind::kSim, defaulted_config);

  EXPECT_EQ(std::bit_cast<uint64_t>(defaulted.tracking.final_estimate),
            std::bit_cast<uint64_t>(with_psi.tracking.final_estimate));
  EXPECT_EQ(defaulted.tracking.messages, with_psi.tracking.messages);
}

TEST(RunApiTest, ShardsInputDrivesSimAsTheCanonicalInterleaving) {
  const int64_t n = 4096;
  const int k = 3;
  const std::vector<double> stream = streams::BernoulliStream(n, 0.1, 13);
  const std::vector<std::vector<double>> shards = ShardRoundRobin(stream, k);
  sim::TrackingOptions tracking;
  tracking.epsilon = 0.25;

  const auto from_stream = MakeCounter(k, n);
  RunConfig stream_config;
  stream_config.protocol = from_stream.get();
  stream_config.stream = &stream;
  stream_config.tracking = tracking;
  const RunResult via_stream =
      RunWithTransport(TransportKind::kSim, stream_config);

  const auto from_shards = MakeCounter(k, n);
  RunConfig shard_config;
  shard_config.protocol = from_shards.get();
  shard_config.shards = shards;
  shard_config.tracking = tracking;
  const RunResult via_shards =
      RunWithTransport(TransportKind::kSim, shard_config);

  EXPECT_EQ(std::bit_cast<uint64_t>(via_shards.tracking.final_estimate),
            std::bit_cast<uint64_t>(via_stream.tracking.final_estimate));
  EXPECT_EQ(via_shards.tracking.messages, via_stream.tracking.messages);
}

TEST(RunApiTest, ThreadsBackendLinearizesThroughUnifiedApi) {
  const int64_t n = 16384;
  const int k = 4;
  const std::vector<double> stream = streams::BernoulliStream(n, 0.1, 14);
  const auto protocol = MakeCounter(k, n);
  RunConfig config;
  config.protocol = protocol.get();
  config.stream = &stream;
  config.threaded.capture = true;
  config.threaded.num_readers = 2;
  const RunResult run = RunWithTransport(TransportKind::kThreads, config);
  EXPECT_EQ(run.transport, TransportKind::kThreads);
  EXPECT_EQ(run.serving.updates, n);
  const auto oracle = MakeCounter(k, n);
  const LinearizabilityReport report = CheckLinearizable(run, oracle.get());
  EXPECT_TRUE(report.linearizable) << report.failure;
}

TEST(RunApiTest, SocketsBackendLinearizesThroughUnifiedApi) {
  const int64_t n = 8192;
  const int k = 4;
  const std::vector<double> stream = streams::BernoulliStream(n, 0.1, 15);
  const auto protocol = MakeCounter(k, n);
  RunConfig config;
  config.protocol = protocol.get();
  config.stream = &stream;
  config.sockets.capture = true;
  const RunResult run = RunWithTransport(TransportKind::kSockets, config);
  EXPECT_EQ(run.transport, TransportKind::kSockets);
  EXPECT_EQ(run.serving.updates, n);
  EXPECT_EQ(run.sockets.unexpected_exits, 0);
  const auto oracle = MakeCounter(k, n);
  const LinearizabilityReport report = CheckLinearizable(run, oracle.get());
  EXPECT_TRUE(report.linearizable) << report.failure;
}

TEST(RunApiTest, SimResultIsNotLinearizabilityCheckable) {
  const int64_t n = 1024;
  const int k = 2;
  const std::vector<double> stream = streams::BernoulliStream(n, 0.1, 16);
  const auto protocol = MakeCounter(k, n);
  RunConfig config;
  config.protocol = protocol.get();
  config.stream = &stream;
  const RunResult run = RunWithTransport(TransportKind::kSim, config);
  const auto oracle = MakeCounter(k, n);
  const LinearizabilityReport report = CheckLinearizable(run, oracle.get());
  EXPECT_FALSE(report.linearizable);
  EXPECT_FALSE(report.failure.empty())
      << "a sim result must explain why there is nothing to check";
}

}  // namespace
}  // namespace nmc::runtime
