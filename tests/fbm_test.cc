#include "streams/fbm.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/statistics.h"

namespace nmc::streams {
namespace {

TEST(FgnAutocovarianceTest, UnitVarianceAtLagZero) {
  for (double h : {0.2, 0.5, 0.7, 0.9}) {
    EXPECT_NEAR(FgnAutocovariance(h, 0), 1.0, 1e-12) << "H=" << h;
  }
}

TEST(FgnAutocovarianceTest, BrownianIncrementsUncorrelated) {
  for (int64_t lag : {1, 2, 5, 100}) {
    EXPECT_NEAR(FgnAutocovariance(0.5, lag), 0.0, 1e-12);
  }
}

TEST(FgnAutocovarianceTest, PositiveForLargeHurst) {
  for (int64_t lag : {1, 2, 10}) {
    EXPECT_GT(FgnAutocovariance(0.8, lag), 0.0);
  }
}

TEST(FgnAutocovarianceTest, NegativeForSmallHurst) {
  EXPECT_LT(FgnAutocovariance(0.3, 1), 0.0);
}

TEST(FgnAutocovarianceTest, SymmetricInLag) {
  EXPECT_DOUBLE_EQ(FgnAutocovariance(0.7, 3), FgnAutocovariance(0.7, -3));
}

// Sample autocovariance of Davies-Harte output should match theory. For
// large H a single realization's sample autocovariance converges slowly
// (fluctuations ~ n^{2H-2}), so we average over independent realizations.
TEST(FgnDaviesHarteTest, SampleAutocovarianceMatchesTheory) {
  const int64_t n = 1 << 14;
  const int trials = 24;
  for (double hurst : {0.5, 0.7, 0.85}) {
    for (int64_t lag : {0, 1, 2, 8}) {
      double mean_cov = 0.0;
      for (int trial = 0; trial < trials; ++trial) {
        const auto fgn =
            FgnDaviesHarte(n, hurst, 12345 + static_cast<uint64_t>(trial));
        double acc = 0.0;
        for (int64_t t = 0; t + lag < n; ++t) {
          acc +=
              fgn[static_cast<size_t>(t)] * fgn[static_cast<size_t>(t + lag)];
        }
        mean_cov += acc / static_cast<double>(n - lag);
      }
      mean_cov /= trials;
      EXPECT_NEAR(mean_cov, FgnAutocovariance(hurst, lag), 0.08)
          << "H=" << hurst << " lag=" << lag;
    }
  }
}

TEST(FgnDaviesHarteTest, MarginalIsStandardNormal) {
  const auto fgn = FgnDaviesHarte(1 << 14, 0.75, 777);
  common::RunningStat stat;
  for (double x : fgn) stat.Add(x);
  EXPECT_NEAR(stat.mean(), 0.0, 0.1);
  EXPECT_NEAR(stat.variance(), 1.0, 0.15);
}

// The defining self-similarity property: Var[S_t] = t^{2H}.
TEST(FgnDaviesHarteTest, PartialSumVarianceScalesAsT2H) {
  const int64_t n = 1 << 12;
  const int trials = 48;
  for (double hurst : {0.5, 0.8}) {
    std::vector<double> ts{64.0, 256.0, 1024.0, 4096.0};
    std::vector<double> vars;
    for (double tq : ts) {
      const int64_t t = static_cast<int64_t>(tq);
      common::RunningStat stat;
      for (int trial = 0; trial < trials; ++trial) {
        const auto fgn =
            FgnDaviesHarte(n, hurst, 1000 + static_cast<uint64_t>(trial));
        double sum = 0.0;
        for (int64_t i = 0; i < t; ++i) sum += fgn[static_cast<size_t>(i)];
        stat.Add(sum * sum);
      }
      vars.push_back(stat.mean());
    }
    const auto fit = common::FitPowerLaw(ts, vars);
    EXPECT_NEAR(fit.slope, 2.0 * hurst, 0.25) << "H=" << hurst;
  }
}

TEST(FgnDaviesHarteTest, DeterministicInSeed) {
  EXPECT_EQ(FgnDaviesHarte(256, 0.7, 5), FgnDaviesHarte(256, 0.7, 5));
  EXPECT_NE(FgnDaviesHarte(256, 0.7, 5), FgnDaviesHarte(256, 0.7, 6));
}

TEST(FgnHoskingTest, SampleAutocovarianceMatchesTheory) {
  const int64_t n = 4096;
  const double hurst = 0.75;
  const auto fgn = FgnHosking(n, hurst, 31);
  for (int64_t lag : {0, 1, 4}) {
    double acc = 0.0;
    for (int64_t t = 0; t + lag < n; ++t) {
      acc += fgn[static_cast<size_t>(t)] * fgn[static_cast<size_t>(t + lag)];
    }
    const double sample_cov = acc / static_cast<double>(n - lag);
    EXPECT_NEAR(sample_cov, FgnAutocovariance(hurst, lag), 0.12) << lag;
  }
}

// Cross-validation: the two generators should produce statistically
// indistinguishable partial-sum variances.
TEST(FgnGeneratorsTest, HoskingAndDaviesHarteAgree) {
  const int64_t n = 512;
  const double hurst = 0.7;
  const int trials = 64;
  common::RunningStat dh_stat, hos_stat;
  for (int trial = 0; trial < trials; ++trial) {
    const uint64_t seed = 9000 + static_cast<uint64_t>(trial);
    double dh_sum = 0.0;
    for (double x : FgnDaviesHarte(n, hurst, seed)) dh_sum += x;
    double hos_sum = 0.0;
    for (double x : FgnHosking(n, hurst, seed + 50000)) hos_sum += x;
    dh_stat.Add(dh_sum * dh_sum);
    hos_stat.Add(hos_sum * hos_sum);
  }
  const double theory = std::pow(static_cast<double>(n), 2.0 * hurst);
  EXPECT_NEAR(dh_stat.mean() / theory, 1.0, 0.45);
  EXPECT_NEAR(hos_stat.mean() / theory, 1.0, 0.45);
}

TEST(CumulativeSumTest, PrefixSums) {
  const std::vector<double> increments{1.0, -2.0, 3.0};
  const auto path = CumulativeSum(increments);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_DOUBLE_EQ(path[0], 1.0);
  EXPECT_DOUBLE_EQ(path[1], -1.0);
  EXPECT_DOUBLE_EQ(path[2], 2.0);
}

TEST(CumulativeSumTest, EmptyInput) {
  EXPECT_TRUE(CumulativeSum({}).empty());
}

}  // namespace
}  // namespace nmc::streams
