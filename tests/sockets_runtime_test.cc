// End-to-end tests of the sockets transport: forked site processes, the
// framed wire, the go-back-N reliable link, and the fault twins (socket
// loss, SIGKILL). Everything here runs real fork/socketpair machinery, so
// the assertions are about contracts (bit-identical replay, zero leaks of
// children or fds) rather than timing.

#include "runtime/sockets.h"

#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/exact_sync.h"
#include "registry/builtin.h"
#include "runtime/run.h"
#include "runtime/threaded.h"
#include "sim/registry.h"
#include "streams/bernoulli.h"

// The SIGKILL tests fork children that the sanitizer runtimes dislike
// interrupting; under TSan the atexit machinery of a killed child can
// deadlock spuriously, so those tests are compiled out there (ASan and
// plain builds run them).
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define NMC_TSAN 1
#endif
#endif
#ifndef NMC_TSAN
#define NMC_TSAN 0
#endif

namespace nmc::runtime {
namespace {

sim::ProtocolParams TestParams(int64_t n) {
  sim::ProtocolParams params;
  params.epsilon = 0.25;
  params.horizon_n = n;
  params.seed = 41;
  return params;
}

std::unique_ptr<sim::Protocol> MakeCounter(int num_sites, int64_t n) {
  registry::RegisterBuiltinProtocols();
  return sim::ProtocolRegistry::Global().Create("counter", num_sites,
                                                TestParams(n));
}

std::vector<std::vector<double>> TestShards(int64_t n, int num_sites,
                                            uint64_t seed) {
  return ShardRoundRobin(streams::BernoulliStream(n, 0.2, seed), num_sites);
}

TEST(SocketsRuntimeTest, ConsumesEveryUpdateAndTearsDownCleanly) {
  const int64_t n = 8192;
  const int k = 4;
  const auto shards = TestShards(n, k, 91);
  const auto protocol = MakeCounter(k, n);
  SocketRunOptions options;
  const SocketRunResult result = RunSockets(protocol.get(), shards, options);
  EXPECT_EQ(result.serving.updates, n);
  EXPECT_FALSE(result.stats.timed_out);
  EXPECT_EQ(result.stats.unexpected_exits, 0);
  EXPECT_EQ(result.stats.children_reaped, k);
  EXPECT_EQ(result.stats.updates_lost, 0);
  EXPECT_EQ(result.stats.generated_updates, n);
  EXPECT_GE(result.stats.frames, n);  // n updates + k FINs at least
}

TEST(SocketsRuntimeTest, CapturedRunReplaysBitIdenticallyAgainstSimOracle) {
  const int64_t n = 8192;
  const int k = 4;
  const auto shards = TestShards(n, k, 92);
  const auto protocol = MakeCounter(k, n);
  SocketRunOptions options;
  options.capture = true;
  options.num_readers = 2;
  const SocketRunResult result = RunSockets(protocol.get(), shards, options);
  ASSERT_EQ(result.serving.updates, n);
  const auto oracle = MakeCounter(k, n);
  const LinearizabilityReport report =
      CheckLinearizable(result.serving, oracle.get());
  EXPECT_TRUE(report.linearizable) << report.failure;
  EXPECT_EQ(report.publishes_checked, result.serving.publishes);
  EXPECT_GT(report.samples_checked, 0);
  EXPECT_EQ(result.serving.generation_regressions, 0);
}

TEST(SocketsRuntimeTest, RawLinkUnderLossViolatesAndLosesUpdates) {
  const int64_t n = 8192;
  const int k = 4;
  const auto shards = TestShards(n, k, 93);
  baselines::ExactSyncProtocol protocol(k);
  SocketRunOptions options;
  options.reliable = false;
  options.faults.loss = 0.02;
  options.faults.seed = 7;
  options.epsilon = 0.002;
  options.rel_error_floor = 32.0;
  const SocketRunResult result = RunSockets(&protocol, shards, options);
  EXPECT_GT(result.stats.drops_injected, 0);
  EXPECT_GT(result.stats.updates_lost, 0);
  EXPECT_GT(result.stats.violation_steps, 0);
  EXPECT_EQ(result.stats.nacks_sent, 0) << "raw link must never NACK";
  // Lost = generated-but-never-consumed; drops at a shard's very tail
  // never enter the generated world at all, so generated <= n.
  EXPECT_EQ(result.serving.updates + result.stats.updates_lost,
            result.stats.generated_updates);
  EXPECT_LE(result.stats.generated_updates, n);
  EXPECT_LT(result.serving.updates, n);
  EXPECT_FALSE(result.stats.timed_out);
}

TEST(SocketsRuntimeTest, ReliableLinkUnderLossIsExact) {
  const int64_t n = 8192;
  const int k = 4;
  const auto shards = TestShards(n, k, 93);
  baselines::ExactSyncProtocol protocol(k);
  SocketRunOptions options;
  options.reliable = true;
  options.faults.loss = 0.02;
  options.faults.seed = 7;
  options.epsilon = 0.002;
  const SocketRunResult result = RunSockets(&protocol, shards, options);
  EXPECT_EQ(result.serving.updates, n);
  EXPECT_EQ(result.stats.updates_lost, 0);
  EXPECT_EQ(result.stats.violation_steps, 0);
  EXPECT_GT(result.stats.drops_injected, 0);
  EXPECT_GT(result.stats.nacks_sent, 0) << "loss must trigger go-back-N";
  EXPECT_GT(result.stats.duplicate_updates, 0)
      << "rewind retransmissions necessarily overlap";
  EXPECT_FALSE(result.stats.timed_out);
}

TEST(SocketsRuntimeTest, TcpLoopbackCarriesTheSameRun) {
  const int64_t n = 4096;
  const int k = 3;
  const auto shards = TestShards(n, k, 94);
  const auto protocol = MakeCounter(k, n);
  SocketRunOptions options;
  options.use_tcp = true;
  const SocketRunResult result = RunSockets(protocol.get(), shards, options);
  EXPECT_EQ(result.serving.updates, n);
  EXPECT_EQ(result.stats.unexpected_exits, 0);
  EXPECT_EQ(result.stats.children_reaped, k);
  EXPECT_FALSE(result.stats.timed_out);
}

#if !NMC_TSAN

TEST(SocketsRuntimeTest, SigkilledSiteRespawnsAndFinishesExactly) {
  const int64_t n = 8192;
  const int k = 4;
  const auto shards = TestShards(n, k, 95);
  baselines::ExactSyncProtocol protocol(k);
  SocketRunOptions options;
  options.reliable = true;
  options.epsilon = 0.002;
  options.resync_deadline_updates = n;
  options.faults.kills.push_back(SiteKillSpec{1, 512});
  const SocketRunResult result = RunSockets(&protocol, shards, options);
  EXPECT_EQ(result.stats.kills_delivered, 1);
  EXPECT_EQ(result.stats.respawns, 1);
  EXPECT_TRUE(result.stats.all_kills_recovered);
  EXPECT_GT(result.stats.max_recovery_updates, 0);
  EXPECT_LE(result.stats.max_recovery_updates, n);
  EXPECT_EQ(result.serving.updates, n)
      << "the replacement incarnation must finish the shard";
  EXPECT_EQ(result.stats.violation_steps, 0);
  EXPECT_EQ(result.stats.updates_lost, 0);
  EXPECT_EQ(result.stats.unexpected_exits, 0);
  // k children FIN'd plus one killed incarnation reaped on EOF.
  EXPECT_EQ(result.stats.children_reaped, k + 1);
}

TEST(SocketsRuntimeTest, SigkillOnRawLinkStaysDeadAndTearsDown) {
  const int64_t n = 8192;
  const int k = 4;
  const auto shards = TestShards(n, k, 96);
  baselines::ExactSyncProtocol protocol(k);
  SocketRunOptions options;
  options.reliable = false;
  options.epsilon = 0.002;
  options.faults.kills.push_back(SiteKillSpec{2, 256});
  const SocketRunResult result = RunSockets(&protocol, shards, options);
  EXPECT_EQ(result.stats.kills_delivered, 1);
  EXPECT_EQ(result.stats.respawns, 0);
  EXPECT_FALSE(result.stats.all_kills_recovered);
  EXPECT_LT(result.serving.updates, n) << "the dead site's tail is gone";
  EXPECT_EQ(result.stats.children_reaped, k);
  EXPECT_FALSE(result.stats.timed_out);
}

#endif  // !NMC_TSAN

TEST(SocketsRuntimeTest, RegistryGatesSocketsLikeThreads) {
  registry::RegisterBuiltinProtocols();
  EXPECT_TRUE(TransportSupports(TransportKind::kSockets, "counter"));
  EXPECT_TRUE(TransportSupports(TransportKind::kSim, "counter"));
}

}  // namespace
}  // namespace nmc::runtime
