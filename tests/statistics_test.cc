#include "common/statistics.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace nmc::common {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat stat;
  EXPECT_EQ(stat.count(), 0);
  EXPECT_EQ(stat.mean(), 0.0);
  EXPECT_EQ(stat.variance(), 0.0);
  EXPECT_EQ(stat.stderr_mean(), 0.0);
}

TEST(RunningStatTest, SingleValue) {
  RunningStat stat;
  stat.Add(5.0);
  EXPECT_EQ(stat.count(), 1);
  EXPECT_EQ(stat.mean(), 5.0);
  EXPECT_EQ(stat.variance(), 0.0);
  EXPECT_EQ(stat.min(), 5.0);
  EXPECT_EQ(stat.max(), 5.0);
  EXPECT_EQ(stat.sum(), 5.0);
}

TEST(RunningStatTest, MatchesDirectComputation) {
  const std::vector<double> values{1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStat stat;
  for (double v : values) stat.Add(v);
  EXPECT_EQ(stat.count(), 5);
  EXPECT_DOUBLE_EQ(stat.mean(), 6.2);
  EXPECT_DOUBLE_EQ(stat.sum(), 31.0);
  // Unbiased sample variance computed by hand: sum((x-6.2)^2)/4.
  double ss = 0.0;
  for (double v : values) ss += (v - 6.2) * (v - 6.2);
  EXPECT_NEAR(stat.variance(), ss / 4.0, 1e-12);
  EXPECT_NEAR(stat.stddev(), std::sqrt(ss / 4.0), 1e-12);
  EXPECT_NEAR(stat.stderr_mean(), std::sqrt(ss / 4.0 / 5.0), 1e-12);
  EXPECT_EQ(stat.min(), 1.0);
  EXPECT_EQ(stat.max(), 16.0);
}

TEST(RunningStatTest, StableForLargeOffsets) {
  // Welford should not lose the variance to catastrophic cancellation.
  RunningStat stat;
  const double offset = 1e9;
  for (int i = 0; i < 1000; ++i) stat.Add(offset + (i % 2 == 0 ? 1.0 : -1.0));
  EXPECT_NEAR(stat.variance(), 1.001, 0.01);
}

TEST(QuantileTest, MedianOfOddCount) {
  EXPECT_DOUBLE_EQ(Quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(QuantileTest, Extremes) {
  const std::vector<double> v{5.0, 1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 9.0);
}

TEST(QuantileTest, Interpolates) {
  // Sorted: 0, 10. q=0.25 -> 2.5.
  EXPECT_DOUBLE_EQ(Quantile({10.0, 0.0}, 0.25), 2.5);
}

TEST(FitLineTest, ExactLineRecovered) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(2.5 * x - 1.0);
  const LinearFit fit = FitLine(xs, ys);
  EXPECT_NEAR(fit.slope, 2.5, 1e-12);
  EXPECT_NEAR(fit.intercept, -1.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(FitLineTest, NoisyLineHasLowerR2) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  std::vector<double> ys{1.0, 4.0, 2.0, 6.0, 4.0, 8.0};
  const LinearFit fit = FitLine(xs, ys);
  EXPECT_GT(fit.slope, 0.0);
  EXPECT_LT(fit.r2, 1.0);
  EXPECT_GT(fit.r2, 0.0);
}

TEST(FitPowerLawTest, RecoversExponent) {
  std::vector<double> xs, ys;
  for (double x : {10.0, 100.0, 1000.0, 10000.0}) {
    xs.push_back(x);
    ys.push_back(3.0 * std::pow(x, 0.5));
  }
  const LinearFit fit = FitPowerLaw(xs, ys);
  EXPECT_NEAR(fit.slope, 0.5, 1e-10);
  EXPECT_NEAR(std::exp(fit.intercept), 3.0, 1e-9);
}

TEST(FitPowerLawTest, RecoversLinearGrowth) {
  std::vector<double> xs, ys;
  for (double x : {8.0, 64.0, 512.0}) {
    xs.push_back(x);
    ys.push_back(7.0 * x);
  }
  const LinearFit fit = FitPowerLaw(xs, ys);
  EXPECT_NEAR(fit.slope, 1.0, 1e-10);
}

}  // namespace
}  // namespace nmc::common
