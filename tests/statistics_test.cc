#include "common/statistics.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace nmc::common {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat stat;
  EXPECT_EQ(stat.count(), 0);
  EXPECT_EQ(stat.mean(), 0.0);
  EXPECT_EQ(stat.variance(), 0.0);
  EXPECT_EQ(stat.stderr_mean(), 0.0);
}

TEST(RunningStatTest, SingleValue) {
  RunningStat stat;
  stat.Add(5.0);
  EXPECT_EQ(stat.count(), 1);
  EXPECT_EQ(stat.mean(), 5.0);
  EXPECT_EQ(stat.variance(), 0.0);
  EXPECT_EQ(stat.min(), 5.0);
  EXPECT_EQ(stat.max(), 5.0);
  EXPECT_EQ(stat.sum(), 5.0);
}

TEST(RunningStatTest, MatchesDirectComputation) {
  const std::vector<double> values{1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStat stat;
  for (double v : values) stat.Add(v);
  EXPECT_EQ(stat.count(), 5);
  EXPECT_DOUBLE_EQ(stat.mean(), 6.2);
  EXPECT_DOUBLE_EQ(stat.sum(), 31.0);
  // Unbiased sample variance computed by hand: sum((x-6.2)^2)/4.
  double ss = 0.0;
  for (double v : values) ss += (v - 6.2) * (v - 6.2);
  EXPECT_NEAR(stat.variance(), ss / 4.0, 1e-12);
  EXPECT_NEAR(stat.stddev(), std::sqrt(ss / 4.0), 1e-12);
  EXPECT_NEAR(stat.stderr_mean(), std::sqrt(ss / 4.0 / 5.0), 1e-12);
  EXPECT_EQ(stat.min(), 1.0);
  EXPECT_EQ(stat.max(), 16.0);
}

TEST(RunningStatTest, StableForLargeOffsets) {
  // Welford should not lose the variance to catastrophic cancellation.
  RunningStat stat;
  const double offset = 1e9;
  for (int i = 0; i < 1000; ++i) stat.Add(offset + (i % 2 == 0 ? 1.0 : -1.0));
  EXPECT_NEAR(stat.variance(), 1.001, 0.01);
}

TEST(RunningStatMergeTest, MergeOfDisjointHalvesMatchesSinglePass) {
  // Pooled-moments combine: feeding the halves separately and merging must
  // equal one pass over the concatenation within 1e-12.
  std::vector<double> values;
  for (int i = 0; i < 101; ++i) {
    values.push_back(3.5 * i - 40.0 + ((i % 7) - 3) * 0.25);
  }
  RunningStat single;
  for (double v : values) single.Add(v);
  RunningStat left, right;
  for (size_t i = 0; i < values.size(); ++i) {
    (i < values.size() / 2 ? left : right).Add(values[i]);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), single.count());
  EXPECT_NEAR(left.mean(), single.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), single.variance(),
              1e-12 * single.variance());
  EXPECT_NEAR(left.stderr_mean(), single.stderr_mean(), 1e-12);
  EXPECT_EQ(left.min(), single.min());
  EXPECT_EQ(left.max(), single.max());
  EXPECT_NEAR(left.sum(), single.sum(), 1e-9);
}

TEST(RunningStatMergeTest, MergeManyChunksMatchesSinglePass) {
  // The runner merges one stat per worker; emulate 8 disjoint chunks.
  std::vector<double> values;
  for (int i = 0; i < 240; ++i) values.push_back(1e6 + (i * 37) % 113);
  RunningStat single;
  for (double v : values) single.Add(v);
  RunningStat merged;
  for (int chunk = 0; chunk < 8; ++chunk) {
    RunningStat part;
    for (size_t i = static_cast<size_t>(chunk) * 30; i < (chunk + 1) * 30u;
         ++i) {
      part.Add(values[i]);
    }
    merged.Merge(part);
  }
  EXPECT_EQ(merged.count(), single.count());
  EXPECT_NEAR(merged.mean(), single.mean(), 1e-12 * single.mean());
  EXPECT_NEAR(merged.variance(), single.variance(), 1e-9);
}

TEST(RunningStatMergeTest, MergeWithEmptyIsIdentityBothWays) {
  RunningStat stat;
  stat.Add(2.0);
  stat.Add(4.0);
  RunningStat empty;
  stat.Merge(empty);  // no-op
  EXPECT_EQ(stat.count(), 2);
  EXPECT_DOUBLE_EQ(stat.mean(), 3.0);
  empty.Merge(stat);  // adopts the other side wholesale
  EXPECT_EQ(empty.count(), 2);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
  EXPECT_DOUBLE_EQ(empty.variance(), stat.variance());
  EXPECT_EQ(empty.min(), 2.0);
  EXPECT_EQ(empty.max(), 4.0);
}

TEST(RunningStatMergeTest, MergeOfEmptiesStaysEmpty) {
  RunningStat a, b;
  a.Merge(b);
  EXPECT_EQ(a.count(), 0);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.variance(), 0.0);
}

TEST(QuantileTest, MedianOfOddCount) {
  EXPECT_DOUBLE_EQ(Quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(QuantileTest, Extremes) {
  const std::vector<double> v{5.0, 1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 9.0);
}

TEST(QuantileTest, Interpolates) {
  // Sorted: 0, 10. q=0.25 -> 2.5.
  EXPECT_DOUBLE_EQ(Quantile({10.0, 0.0}, 0.25), 2.5);
}

TEST(FitLineTest, ExactLineRecovered) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(2.5 * x - 1.0);
  const LinearFit fit = FitLine(xs, ys);
  EXPECT_NEAR(fit.slope, 2.5, 1e-12);
  EXPECT_NEAR(fit.intercept, -1.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(FitLineTest, NoisyLineHasLowerR2) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  std::vector<double> ys{1.0, 4.0, 2.0, 6.0, 4.0, 8.0};
  const LinearFit fit = FitLine(xs, ys);
  EXPECT_GT(fit.slope, 0.0);
  EXPECT_LT(fit.r2, 1.0);
  EXPECT_GT(fit.r2, 0.0);
}

TEST(FitPowerLawTest, RecoversExponent) {
  std::vector<double> xs, ys;
  for (double x : {10.0, 100.0, 1000.0, 10000.0}) {
    xs.push_back(x);
    ys.push_back(3.0 * std::pow(x, 0.5));
  }
  const LinearFit fit = FitPowerLaw(xs, ys);
  EXPECT_NEAR(fit.slope, 0.5, 1e-10);
  EXPECT_NEAR(std::exp(fit.intercept), 3.0, 1e-9);
}

TEST(FitPowerLawTest, RecoversLinearGrowth) {
  std::vector<double> xs, ys;
  for (double x : {8.0, 64.0, 512.0}) {
    xs.push_back(x);
    ys.push_back(7.0 * x);
  }
  const LinearFit fit = FitPowerLaw(xs, ys);
  EXPECT_NEAR(fit.slope, 1.0, 1e-10);
}

}  // namespace
}  // namespace nmc::common
