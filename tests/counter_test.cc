#include "core/nonmonotonic_counter.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "streams/bernoulli.h"
#include "streams/fbm.h"
#include "streams/permutation.h"
#include "test_util.h"

namespace nmc::core {
namespace {

using nmc::testing::DefaultOptions;
using nmc::testing::RunCounter;

TEST(CounterTest, SingleSiteZeroDriftTracks) {
  const int64_t n = 1 << 15;
  const auto stream = streams::BernoulliStream(n, 0.0, 1);
  const auto result = RunCounter(stream, 1, DefaultOptions(n, 0.1, 2));
  EXPECT_EQ(result.violation_steps, 0);
  EXPECT_LE(result.max_rel_error, 0.1);
}

TEST(CounterTest, SingleSiteCommunicationSublinear) {
  // The sqrt(n) regime needs sqrt(n) >> sqrt(alpha)*log(n)/eps, so this
  // runs at a larger n and a moderate eps.
  const int64_t n = 1 << 18;
  const auto stream = streams::BernoulliStream(n, 0.0, 3);
  const auto result = RunCounter(stream, 1, DefaultOptions(n, 0.25, 4));
  EXPECT_EQ(result.violation_steps, 0);
  EXPECT_LT(result.messages, n / 2);
  EXPECT_GT(result.messages, 16);
}

TEST(CounterTest, MultiSiteZeroDriftTracks) {
  const int64_t n = 1 << 14;
  for (int k : {2, 4, 16}) {
    const auto stream = streams::BernoulliStream(n, 0.0, 5);
    const auto result = RunCounter(stream, k, DefaultOptions(n, 0.1, 6));
    EXPECT_EQ(result.violation_steps, 0) << "k=" << k;
  }
}

TEST(CounterTest, StraightSyncKeepsCoordinatorExactNearZero) {
  // An alternating ±1 stream never leaves the straight stage (|S| <= 1),
  // so the estimate must be exact at every step.
  const int64_t n = 2000;
  std::vector<double> stream;
  for (int64_t t = 0; t < n; ++t) stream.push_back(t % 2 == 0 ? 1.0 : -1.0);
  core::NonMonotonicCounter counter(4, DefaultOptions(n, 0.1, 7));
  sim::RoundRobinAssignment psi(4);
  double sum = 0.0;
  for (int64_t t = 0; t < n; ++t) {
    const double v = stream[static_cast<size_t>(t)];
    counter.ProcessUpdate(psi.NextSite(t, v), v);
    sum += v;
    ASSERT_DOUBLE_EQ(counter.Estimate(), sum) << "t=" << t;
  }
  const auto diag = counter.diagnostics();
  EXPECT_EQ(diag.stage_switches, 0);
  EXPECT_FALSE(diag.in_sbc_stage);
  // 2 messages per update.
  EXPECT_EQ(counter.stats().total(), 2 * n);
}

TEST(CounterTest, StageSwitchesHappenOnDriftingStream) {
  // Strong drift pushes |eps*S|^2 past k and back is unlikely; at least
  // one switch into SBC must occur.
  const int64_t n = 1 << 14;
  const auto stream = streams::BernoulliStream(n, 0.4, 9);
  core::CounterOptions options = DefaultOptions(n, 0.1, 10);
  core::NonMonotonicCounter counter(4, options);
  sim::RoundRobinAssignment psi(4);
  for (int64_t t = 0; t < n; ++t) {
    const double v = stream[static_cast<size_t>(t)];
    counter.ProcessUpdate(psi.NextSite(t, v), v);
  }
  const auto diag = counter.diagnostics();
  EXPECT_GE(diag.stage_switches, 1);
  EXPECT_TRUE(diag.in_sbc_stage);
  EXPECT_GT(diag.sbc_syncs, 0);
}

TEST(CounterTest, PermutedAdversarialInputTracks) {
  const int64_t n = 1 << 14;
  for (const char* name : {"balanced", "biased", "oscillating", "skewed"}) {
    const auto multiset = streams::MakeAdversaryMultiset(name, n);
    const auto stream = streams::RandomlyPermuted(multiset, 11);
    const auto result = RunCounter(stream, 4, DefaultOptions(n, 0.1, 12));
    EXPECT_EQ(result.violation_steps, 0) << name;
  }
}

TEST(CounterTest, FractionalUpdatesSupported) {
  const int64_t n = 1 << 13;
  const auto stream = streams::FractionalIidStream(n, 0.0, 1.0, 13);
  const auto result = RunCounter(stream, 2, DefaultOptions(n, 0.15, 14));
  EXPECT_EQ(result.violation_steps, 0);
}

TEST(CounterTest, FbmModeTracksLongRangeDependentInput) {
  const int64_t n = 1 << 13;
  const double hurst = 0.75;
  // Raw unit-scale fGn increments (Gaussian, unbounded — Section 3.4's
  // continuous model, which fBm mode accepts as-is).
  const auto stream = streams::FgnDaviesHarte(n, hurst, 15);
  core::CounterOptions options = DefaultOptions(n, 0.1, 16);
  options.fbm_delta = 1.0 / hurst;
  const auto result = RunCounter(stream, 2, options);
  EXPECT_EQ(result.violation_steps, 0);
  EXPECT_LT(result.messages, 2 * n);
}

TEST(CounterTest, DriftModeActivatesPhaseTwo) {
  const int64_t n = 1 << 15;
  const auto stream = streams::BernoulliStream(n, 0.5, 17);
  core::CounterOptions options = DefaultOptions(n, 0.1, 18);
  options.drift_mode = DriftMode::kUnknownUnitDrift;
  core::NonMonotonicCounter counter(4, options);
  sim::RoundRobinAssignment psi(4);
  sim::TrackingOptions tracking;
  tracking.epsilon = 0.1;
  const auto result = sim::RunTracking(stream, &psi, &counter, tracking);
  EXPECT_EQ(result.violation_steps, 0);
  const auto diag = counter.diagnostics();
  EXPECT_TRUE(diag.phase2_active);
  EXPECT_NEAR(diag.mu_hat, 0.5, 0.15);
  EXPECT_GT(diag.phase2_switch_time, 0);
  EXPECT_LT(diag.phase2_switch_time, n / 2);
}

TEST(CounterTest, DriftGuardIsWhatMakesDriftingStreamsSafe) {
  // On a strong-drift stream the count escapes the eps-ball after ~eps*S/mu
  // steps — far sooner than the (eps*S)^2 the eq. (1) law budgets for — so
  // without the conservative 1/(eps*t) guard the counter eventually misses
  // an escape, while with it (the default) tracking holds. (All randomness
  // is seeded, so this contrast is deterministic.)
  const int64_t n = 1 << 16;
  const auto stream = streams::BernoulliStream(n, 0.5, 19);
  core::CounterOptions guarded = DefaultOptions(n, 0.1, 20);
  core::CounterOptions unguarded = guarded;
  unguarded.enable_drift_guard = false;
  const auto r_guarded = RunCounter(stream, 4, guarded);
  const auto r_unguarded = RunCounter(stream, 4, unguarded);
  EXPECT_EQ(r_guarded.violation_steps, 0);
  EXPECT_GT(r_unguarded.violation_steps, 0);
}

TEST(CounterTest, MonotonicSpecialCaseTracks) {
  // mu = 1: the counter solves the monotonic problem of [12].
  const int64_t n = 1 << 15;
  const std::vector<double> stream(static_cast<size_t>(n), 1.0);
  core::CounterOptions options = DefaultOptions(n, 0.1, 21);
  options.drift_mode = DriftMode::kUnknownUnitDrift;
  core::NonMonotonicCounter counter(4, options);
  sim::RoundRobinAssignment psi(4);
  sim::TrackingOptions tracking;
  tracking.epsilon = 0.1;
  const auto result = sim::RunTracking(stream, &psi, &counter, tracking);
  EXPECT_EQ(result.violation_steps, 0);
  EXPECT_TRUE(counter.diagnostics().phase2_active);
  EXPECT_NEAR(counter.diagnostics().mu_hat, 1.0, 0.05);
  EXPECT_LT(result.messages, n / 3);
}

TEST(CounterTest, NegativeDriftHandledSymmetrically) {
  const int64_t n = 1 << 15;
  const auto stream = streams::BernoulliStream(n, -0.6, 23);
  core::CounterOptions options = DefaultOptions(n, 0.1, 24);
  options.drift_mode = DriftMode::kUnknownUnitDrift;
  core::NonMonotonicCounter counter(4, options);
  sim::RoundRobinAssignment psi(4);
  sim::TrackingOptions tracking;
  tracking.epsilon = 0.1;
  const auto result = sim::RunTracking(stream, &psi, &counter, tracking);
  EXPECT_EQ(result.violation_steps, 0);
  EXPECT_TRUE(counter.diagnostics().phase2_active);
  EXPECT_NEAR(counter.diagnostics().mu_hat, -0.6, 0.15);
}

TEST(CounterTest, Phase2DisabledKeepsTrackingCorrect) {
  const int64_t n = 1 << 14;
  const auto stream = streams::BernoulliStream(n, 0.5, 25);
  core::CounterOptions options = DefaultOptions(n, 0.1, 26);
  options.drift_mode = DriftMode::kUnknownUnitDrift;
  options.enable_phase2 = false;
  core::NonMonotonicCounter counter(4, options);
  sim::RoundRobinAssignment psi(4);
  sim::TrackingOptions tracking;
  tracking.epsilon = 0.1;
  const auto result = sim::RunTracking(stream, &psi, &counter, tracking);
  EXPECT_EQ(result.violation_steps, 0);
  EXPECT_FALSE(counter.diagnostics().phase2_active);
}

TEST(CounterTest, StagePolicyAblationsStayCorrect) {
  const int64_t n = 1 << 13;
  const auto stream = streams::BernoulliStream(n, 0.0, 27);
  for (StagePolicy policy :
       {StagePolicy::kAuto, StagePolicy::kSbcOnly, StagePolicy::kStraightOnly}) {
    core::CounterOptions options = DefaultOptions(n, 0.1, 28);
    options.stage_policy = policy;
    const auto result = RunCounter(stream, 4, options);
    EXPECT_EQ(result.violation_steps, 0)
        << "policy=" << static_cast<int>(policy);
  }
}

TEST(CounterTest, StraightOnlyCostsTwoPerUpdate) {
  const int64_t n = 4000;
  const auto stream = streams::BernoulliStream(n, 0.0, 29);
  core::CounterOptions options = DefaultOptions(n, 0.1, 30);
  options.stage_policy = StagePolicy::kStraightOnly;
  const auto result = RunCounter(stream, 4, options);
  EXPECT_EQ(result.messages, 2 * n);
  EXPECT_EQ(result.violation_steps, 0);
}

TEST(CounterTest, DeterministicGivenSeed) {
  const int64_t n = 1 << 12;
  const auto stream = streams::BernoulliStream(n, 0.0, 31);
  const auto a = RunCounter(stream, 4, DefaultOptions(n, 0.1, 32));
  const auto b = RunCounter(stream, 4, DefaultOptions(n, 0.1, 32));
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.final_estimate, b.final_estimate);
}

TEST(CounterTest, TighterEpsilonCostsMore) {
  // A biased multiset pushes |S| through the SBC region where the 1/eps^2
  // rate differentiates the costs (a driftless walk at this n never leaves
  // the straight stage, where cost is eps-independent).
  const int64_t n = 1 << 16;
  const auto stream =
      streams::RandomlyPermuted(streams::SignMultiset(n, 0.7), 33);
  const auto loose = RunCounter(stream, 2, DefaultOptions(n, 0.25, 34));
  const auto tight = RunCounter(stream, 2, DefaultOptions(n, 0.0625, 34));
  EXPECT_EQ(loose.violation_steps, 0);
  EXPECT_EQ(tight.violation_steps, 0);
  EXPECT_GT(tight.messages, loose.messages);
}

TEST(CounterTest, EstimateAvailableFromStart) {
  core::NonMonotonicCounter counter(3, DefaultOptions(100, 0.1, 35));
  EXPECT_DOUBLE_EQ(counter.Estimate(), 0.0);
  counter.ProcessUpdate(0, 1.0);
  EXPECT_DOUBLE_EQ(counter.Estimate(), 1.0);  // straight stage: exact
}

TEST(CounterDeathTest, DriftModeRejectsFractionalUpdates) {
  core::CounterOptions options = DefaultOptions(100, 0.1, 36);
  options.drift_mode = DriftMode::kUnknownUnitDrift;
  core::NonMonotonicCounter counter(2, options);
  EXPECT_DEATH(counter.ProcessUpdate(0, 0.5), "NMC_CHECK");
}

TEST(CounterDeathTest, RejectsOutOfRangeValues) {
  core::NonMonotonicCounter counter(2, DefaultOptions(100, 0.1, 37));
  EXPECT_DEATH(counter.ProcessUpdate(0, 2.0), "NMC_CHECK");
}

}  // namespace
}  // namespace nmc::core
