// Counting-allocator proof of the zero-allocation steady state: after a
// warm-up prefix (vector growth, arena block minting, Phase 2 activation),
// pumping updates through the counter must perform NO heap allocations at
// all. This is the runtime check backing the NO_HEAP_IN_HOT_PATH lint rule
// — the lint rule polices the entry points' text, this test counts actual
// operator new calls across everything they transitively touch.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "core/nonmonotonic_counter.h"
#include "sim/assignment.h"
#include "streams/bernoulli.h"

namespace {
/// Global allocation counter, bumped by the replaced operator new below.
/// Plain (non-atomic) on purpose: the test is single-threaded and the
/// counter must not perturb codegen on the measured path.
int64_t g_allocations = 0;
}  // namespace

// Replace the global allocation functions for this binary. Only the
// unaligned forms are replaced; over-aligned allocations fall through to
// the library's aligned pair (a consistent new/delete pairing either way).
void* operator new(size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace nmc {
namespace {

/// One pumped update, exactly as the harness issues it for a single-site
/// zero-drift run (batching and curve recording change nothing about the
/// allocation profile — they only group calls).
void Pump(core::NonMonotonicCounter* counter, const std::vector<double>& s,
          int64_t t) {
  counter->ProcessUpdate(0, s[static_cast<size_t>(t) % s.size()]);
}

TEST(SteadyStateAllocTest, CounterPumpIsAllocationFreeAfterWarmup) {
  const int64_t n = 1 << 20;  // horizon sized so Phase 2 stays off
  const auto stream = streams::BernoulliStream(1 << 16, 0.0, 21);
  core::CounterOptions options;
  options.epsilon = 0.25;
  options.horizon_n = n;
  options.seed = 11;
  core::NonMonotonicCounter counter(1, options);

  // Warm-up: arena blocks minted, queues at peak capacity, sampler feeds
  // primed, message-type breakdown grown.
  for (int64_t t = 0; t < (1 << 14); ++t) Pump(&counter, stream, t);

  const int64_t before = g_allocations;
  for (int64_t t = 1 << 14; t < (1 << 14) + 100000; ++t) {
    Pump(&counter, stream, t);
  }
  const int64_t after = g_allocations;
  EXPECT_EQ(after - before, 0)
      << (after - before) << " heap allocations across 100k steady-state "
      << "updates; the hot path must not touch the allocator";
  // The counter still works after being spied on.
  EXPECT_GE(counter.Estimate(), -static_cast<double>(n));
}

TEST(SteadyStateAllocTest, MultiSitePumpIsAllocationFreeAfterWarmup) {
  const int64_t n = 1 << 20;
  const int k = 8;
  const auto stream = streams::BernoulliStream(1 << 16, 0.0, 33);
  core::CounterOptions options;
  options.epsilon = 0.25;
  options.horizon_n = n;
  options.seed = 13;
  core::NonMonotonicCounter counter(k, options);
  sim::RoundRobinAssignment psi(k);

  for (int64_t t = 0; t < (1 << 14); ++t) {
    const double v = stream[static_cast<size_t>(t) % stream.size()];
    counter.ProcessUpdate(psi.NextSite(t, v), v);
  }
  const int64_t before = g_allocations;
  for (int64_t t = 1 << 14; t < (1 << 14) + 100000; ++t) {
    const double v = stream[static_cast<size_t>(t) % stream.size()];
    counter.ProcessUpdate(psi.NextSite(t, v), v);
  }
  EXPECT_EQ(g_allocations - before, 0);
}

}  // namespace
}  // namespace nmc
