// Cross-cutting property sweeps over the stream generators: determinism,
// bounds, and multiset preservation must hold for every generator the
// benches rely on.

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "streams/adversarial.h"
#include "streams/bernoulli.h"
#include "streams/fbm.h"
#include "streams/permutation.h"

namespace nmc::streams {
namespace {

std::vector<double> Generate(const std::string& name, int64_t n,
                             uint64_t seed) {
  if (name == "bernoulli0") return BernoulliStream(n, 0.0, seed);
  if (name == "bernoulli_drift") return BernoulliStream(n, 0.4, seed);
  if (name == "fractional") return FractionalIidStream(n, -0.2, 0.7, seed);
  if (name == "perm_balanced") {
    return RandomlyPermuted(SignMultiset(n, 0.5), seed);
  }
  if (name == "perm_skewed") {
    return RandomlyPermuted(SkewedMultiset(n, n / 50, 0.1), seed);
  }
  if (name == "alternating") return AlternatingStream(n);
  if (name == "sawtooth") return SawtoothStream(n, 32);
  ADD_FAILURE() << name;
  return {};
}

class StreamPropertyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(StreamPropertyTest, CorrectLengthAndBounded) {
  const auto stream = Generate(GetParam(), 2048, 5);
  ASSERT_EQ(stream.size(), 2048u);
  for (double v : stream) {
    EXPECT_LE(std::fabs(v), 1.0) << GetParam();
  }
}

TEST_P(StreamPropertyTest, DeterministicInSeed) {
  EXPECT_EQ(Generate(GetParam(), 512, 9), Generate(GetParam(), 512, 9));
}

TEST_P(StreamPropertyTest, EmptyStreamSupported) {
  EXPECT_TRUE(Generate(GetParam(), 0, 1).empty());
}

INSTANTIATE_TEST_SUITE_P(AllModels, StreamPropertyTest,
                         ::testing::Values("bernoulli0", "bernoulli_drift",
                                           "fractional", "perm_balanced",
                                           "perm_skewed", "alternating",
                                           "sawtooth"),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

// fGn generation must also hold up outside the paper's H >= 1/2 range
// (the Davies-Harte embedding is valid on all of (0, 1)).
class FgnHurstTest : public ::testing::TestWithParam<double> {};

TEST_P(FgnHurstTest, GeneratesWithPlausibleMarginal) {
  // Check the second moment E[x^2] = 1, which holds for every H; the
  // sample MEAN is not a usable check near H = 1 (it fluctuates as
  // n^{H-1}, e.g. ~0.66 at H = 0.95 and n = 4096 — that slow averaging is
  // the defining feature of long-range dependence). Average over seeds to
  // tame the estimator's own LRD.
  const double hurst = GetParam();
  const int trials = 32;
  const int64_t n = 1 << 12;
  double acc = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    const auto fgn = FgnDaviesHarte(n, hurst, 33 + static_cast<uint64_t>(trial));
    for (double x : fgn) acc += x * x;
  }
  const double second_moment = acc / (static_cast<double>(n) * trials);
  EXPECT_NEAR(second_moment, 1.0, 0.35) << "H=" << hurst;
}

TEST_P(FgnHurstTest, LagOneCorrelationHasTheRightSign) {
  const double hurst = GetParam();
  // Average over realizations so the check is statistical, not anecdotal.
  double acc = 0.0;
  const int trials = 16;
  const int64_t n = 1 << 12;
  for (int trial = 0; trial < trials; ++trial) {
    const auto fgn = FgnDaviesHarte(n, hurst, 40 + static_cast<uint64_t>(trial));
    for (int64_t t = 0; t + 1 < n; ++t) {
      acc += fgn[static_cast<size_t>(t)] * fgn[static_cast<size_t>(t + 1)];
    }
  }
  const double lag1 = acc / (static_cast<double>(n - 1) * trials);
  if (hurst < 0.5) {
    EXPECT_LT(lag1, 0.0) << "H=" << hurst;
  } else if (hurst > 0.5) {
    EXPECT_GT(lag1, 0.0) << "H=" << hurst;
  } else {
    EXPECT_NEAR(lag1, 0.0, 0.03);
  }
}

INSTANTIATE_TEST_SUITE_P(HurstRange, FgnHurstTest,
                         ::testing::Values(0.2, 0.35, 0.5, 0.65, 0.8, 0.95),
                         [](const ::testing::TestParamInfo<double>& i) {
                           return "H" + std::to_string(static_cast<int>(
                                            std::lround(i.param * 100)));
                         });

TEST(PermutationPropertyTest, PrefixSumsDifferButTotalsMatch) {
  const int64_t n = 4096;
  const auto base = SignMultiset(n, 0.6);
  const auto a = RandomlyPermuted(base, 1);
  const auto b = RandomlyPermuted(base, 2);
  double total_a = 0.0, total_b = 0.0;
  bool prefixes_differ = false;
  double prefix_a = 0.0, prefix_b = 0.0;
  for (int64_t t = 0; t < n; ++t) {
    prefix_a += a[static_cast<size_t>(t)];
    prefix_b += b[static_cast<size_t>(t)];
    if (t == n / 2 && prefix_a != prefix_b) prefixes_differ = true;
  }
  total_a = prefix_a;
  total_b = prefix_b;
  EXPECT_DOUBLE_EQ(total_a, total_b);  // the multiset fixes S_n
  EXPECT_TRUE(prefixes_differ);        // but not the path
}

}  // namespace
}  // namespace nmc::streams
