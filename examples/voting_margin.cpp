// Voting margin monitor — the paper's motivating example (Section 1).
//
// Votes for two options (A = +1, B = -1) arrive at k regional ingestion
// servers; the analyst wants a continuous view of WHICH option leads and
// by roughly what margin. The margin is a non-monotonic stream: the naive
// approach — two monotonic counters, report the difference — is accurate
// for each option but its error on the DIFFERENCE is up to eps*(A+B),
// unbounded relative to a close margin. The non-monotonic counter tracks
// the margin itself with a true relative guarantee.
//
// Build & run:  cmake --build build && ./build/examples/voting_margin

#include <cmath>
#include <cstdio>

#include "baselines/two_monotonic.h"
#include "core/certify.h"
#include "core/nonmonotonic_counter.h"
#include "sim/assignment.h"
#include "streams/permutation.h"

int main() {
  const int64_t n = 100000;  // votes
  const int k = 8;           // ingestion servers
  const double epsilon = 0.1;

  // A close race: 50.5% for A, 49.5% for B — final margin 1000 votes out
  // of 100000. Votes arrive in random order (the permutation model).
  const auto votes = nmc::streams::RandomlyPermuted(
      nmc::streams::SignMultiset(n, 0.505), /*seed=*/3);

  nmc::core::CounterOptions options;
  options.epsilon = epsilon;
  options.horizon_n = n;
  options.seed = 5;
  nmc::core::NonMonotonicCounter margin_counter(k, options);

  nmc::baselines::TwoMonotonicProtocol naive(k, epsilon, 1e-6, /*seed=*/7);

  nmc::sim::UniformRandomAssignment psi(k, /*seed=*/9);
  double margin = 0.0;
  int64_t naive_wrong_leader = 0, ours_wrong_leader = 0, checked = 0;
  double naive_worst_rel = 0.0, ours_worst_rel = 0.0;
  for (int64_t t = 0; t < n; ++t) {
    const double vote = votes[static_cast<size_t>(t)];
    const int site = psi.NextSite(t, vote);
    margin_counter.ProcessUpdate(site, vote);
    naive.ProcessUpdate(site, vote);
    margin += vote;
    if (std::fabs(margin) >= 50.0) {  // leader question is meaningful
      ++checked;
      if ((naive.Estimate() > 0) != (margin > 0)) ++naive_wrong_leader;
      // Our counter can go further than a raw sign: CertifiedSign only
      // calls the race when the guarantee PROVES a margin of >= 50 — and
      // such calls are never wrong (certify_test verifies this property).
      const int call =
          nmc::core::CertifiedSign(margin_counter.Estimate(), epsilon, 50.0);
      if (call != 0 && call != (margin > 0 ? 1 : -1)) ++ours_wrong_leader;
      if (call == 0 && (margin_counter.Estimate() > 0) != (margin > 0)) {
        ++ours_wrong_leader;  // count raw sign errors too (there are none)
      }
      naive_worst_rel = std::max(
          naive_worst_rel, std::fabs(naive.Estimate() - margin) / std::fabs(margin));
      ours_worst_rel = std::max(
          ours_worst_rel,
          std::fabs(margin_counter.Estimate() - margin) / std::fabs(margin));
    }
  }

  std::printf("final true margin              : %+.0f votes\n", margin);
  std::printf("non-monotonic counter estimate : %+.0f  (worst rel. error %.3f)\n",
              margin_counter.Estimate(), ours_worst_rel);
  std::printf("naive difference estimate      : %+.0f  (worst rel. error %.3f)\n",
              naive.Estimate(), naive_worst_rel);
  std::printf("\nsteps with |margin| >= 50      : %lld\n",
              static_cast<long long>(checked));
  std::printf("wrong-leader reports, ours     : %lld\n",
              static_cast<long long>(ours_wrong_leader));
  std::printf("wrong-leader reports, naive    : %lld\n",
              static_cast<long long>(naive_wrong_leader));
  std::printf("\nmessages, ours                 : %lld\n",
              static_cast<long long>(margin_counter.stats().total()));
  std::printf("messages, naive                : %lld\n",
              static_cast<long long>(naive.stats().total()));
  std::printf("\nThe naive pair is individually accurate but blind to the\n"
              "margin's sign and scale; the non-monotonic counter holds the\n"
              "relative guarantee on the margin itself.\n");
  return 0;
}
