// Long-range-dependent traffic monitor (Section 3.4).
//
// Aggregate network traffic famously exhibits self-similarity and
// long-range dependence (Leland et al. [14]); fractional Brownian motion
// with Hurst parameter H in (1/2, 1) is the standard model. This example
// tracks the cumulative deviation of traffic from its provisioned baseline
// across k routers, using the eq. (2) sampling law — which only needs an
// UPPER bound on H (delta <= 1/H) — and shows the communication shrinking
// as the dependence strengthens.
//
// Build & run:  cmake --build build && ./build/examples/fbm_traffic

#include <cmath>
#include <cstdio>

#include "core/nonmonotonic_counter.h"
#include "runtime/run.h"
#include "sim/assignment.h"
#include "streams/fbm.h"

namespace {

void MonitorAt(double hurst) {
  const int64_t n = 1 << 16;  // measurement epochs
  const int k = 4;            // routers
  const double epsilon = 0.1;

  // Deviation increments: exact-covariance fractional Gaussian noise.
  const auto increments = nmc::streams::FgnDaviesHarte(n, hurst, /*seed=*/21);

  nmc::core::CounterOptions options;
  options.epsilon = epsilon;
  options.horizon_n = n;
  options.fbm_delta = 1.0 / hurst;  // only an upper bound on H is needed
  options.seed = 23;
  nmc::core::NonMonotonicCounter counter(k, options);
  nmc::sim::RoundRobinAssignment psi(k);

  nmc::runtime::RunConfig config;
  config.protocol = &counter;
  config.stream = &increments;
  config.psi = &psi;
  config.tracking.epsilon = epsilon;
  const auto result = nmc::runtime::RunWithTransport(
                          nmc::runtime::TransportKind::kSim, config)
                          .tracking;

  std::printf("H = %.2f  delta = %.2f  | deviation now %9.1f | "
              "messages %8lld (%.3f/epoch) | violations %lld\n",
              hurst, 1.0 / hurst, result.final_sum,
              static_cast<long long>(result.messages),
              static_cast<double>(result.messages) / static_cast<double>(n),
              static_cast<long long>(result.violation_steps));
}

}  // namespace

int main() {
  std::printf("Tracking cumulative traffic deviation over %d routers,\n"
              "eps = 0.1, n = 65536 epochs, for increasing Hurst parameter:\n\n",
              4);
  for (double hurst : {0.5, 0.6, 0.7, 0.8, 0.9}) MonitorAt(hurst);
  std::printf("\nStronger long-range dependence (larger H) makes the process\n"
              "more predictable and keeps it away from zero, so the monitor\n"
              "gets cheaper — the Õ(n^{1-H}/eps) behavior of Theorem 3.5.\n");
  return 0;
}
