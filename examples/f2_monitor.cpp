// Distributed F2 monitor with insertions AND deletions (Section 5.1).
//
// Items (e.g. active sessions keyed by user id) are inserted and deleted
// across k frontends; the coordinator continuously tracks the second
// frequency moment F2 = sum_i m_i^2 — a standard skew/self-join-size
// statistic — via a fast AMS sketch whose every cell is a distributed
// non-monotonic counter. Deletions make the cell streams non-monotonic,
// which is exactly what the counter is for.
//
// Build & run:  cmake --build build && ./build/examples/f2_monitor

#include <cmath>
#include <cstdio>
#include <vector>

#include "sim/assignment.h"
#include "sketch/distributed_f2.h"
#include "streams/items.h"

int main() {
  const int64_t n = 40000;
  const int64_t universe = 512;
  const int k = 4;

  // Session churn: Zipf(1.1) arrivals, 30% of updates close an open
  // session; randomly permuted order (the Theorem 3.4 input model).
  const auto updates = nmc::streams::PermutedItemStream(
      nmc::streams::ZipfTurnstileStream(n, universe, 1.1, 0.3, /*seed=*/31),
      /*seed=*/33);
  const auto exact = nmc::streams::ExactF2Prefix(updates, universe);

  nmc::sketch::DistributedF2Options options;
  options.rows = 5;
  options.cols = 128;
  options.counter_epsilon = 0.1;
  options.horizon_n = n;
  options.seed = 35;
  nmc::sketch::DistributedF2Tracker tracker(k, options);
  nmc::sim::UniformRandomAssignment psi(k, /*seed=*/37);

  std::printf("%10s %12s %12s %10s\n", "t", "exact_F2", "tracked_F2",
              "rel_err");
  double worst = 0.0;
  for (int64_t t = 0; t < n; ++t) {
    const auto& u = updates[static_cast<size_t>(t)];
    tracker.ProcessUpdate(psi.NextSite(t, u.sign), u);
    const double truth = static_cast<double>(exact[static_cast<size_t>(t)]);
    if (truth >= 100.0) {
      const double err = std::fabs(tracker.EstimateF2() - truth) / truth;
      worst = std::max(worst, err);
    }
    if ((t + 1) % 8000 == 0) {
      std::printf("%10lld %12.0f %12.0f %10.3f\n",
                  static_cast<long long>(t + 1), truth, tracker.EstimateF2(),
                  std::fabs(tracker.EstimateF2() - truth) / std::max(truth, 1.0));
    }
  }

  // The same tracked cells answer point queries (CountSketch estimator):
  // here, the live session count of the three heaviest users.
  std::printf("\nper-item frequency point queries (same state, no extra "
              "communication):\n");
  std::vector<int64_t> live(static_cast<size_t>(universe), 0);
  for (const auto& u : updates) live[static_cast<size_t>(u.item)] += u.sign;
  for (int64_t item = 0; item < 3; ++item) {
    std::printf("  item %lld: exact %lld, tracked %.0f\n",
                static_cast<long long>(item),
                static_cast<long long>(live[static_cast<size_t>(item)]),
                tracker.EstimateFrequency(item));
  }

  const auto stats = tracker.stats();
  std::printf("\nworst checkpoint relative error : %.3f\n", worst);
  std::printf("messages across all cell counters: %lld (%.1f per update)\n",
              static_cast<long long>(stats.total()),
              static_cast<double>(stats.total()) / static_cast<double>(n));
  std::printf("(each update touches %d sketch rows; forwarding raw updates\n"
              "to a central sketch would cost %lld messages)\n",
              options.rows, static_cast<long long>(n));
  return 0;
}
