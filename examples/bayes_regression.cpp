// Streaming distributed Bayesian linear regression (Section 5.2).
//
// Training examples (x, y) stream into k workers of an ML platform; the
// coordinator maintains an approximate posterior N(m_t, S_t) over the
// model weights w at all times. Each entry of the precision matrix
// S_t^{-1} = S0^{-1} + beta*A^T A and of b_t = beta*A^T y is a bounded,
// randomly ordered, non-monotonic stream — one distributed counter each —
// so the whole posterior is tracked with sublinear communication.
//
// Build & run:  cmake --build build && ./build/examples/bayes_regression

#include <cstdio>

#include "regression/bayes_linreg.h"
#include "regression/distributed_linreg.h"
#include "sim/assignment.h"
#include "streams/regression_data.h"

int main() {
  const int64_t n = 30000;
  const int dim = 4;
  const int k = 4;

  nmc::streams::RegressionDataOptions data_options;
  data_options.dim = dim;
  data_options.noise_precision = 25.0;
  data_options.seed = 51;
  const auto data = nmc::streams::GenerateRegressionData(n, data_options);

  nmc::regression::BayesLinRegOptions model;
  model.dim = dim;
  model.prior_variance = 10.0;
  model.noise_precision = 25.0;

  nmc::regression::ExactBayesLinReg exact(model);  // centralized reference

  nmc::regression::DistributedLinRegOptions tracker_options;
  tracker_options.model = model;
  tracker_options.counter_epsilon = 0.05;
  tracker_options.horizon_n = n;
  tracker_options.response_bound = 16.0;
  tracker_options.seed = 53;
  nmc::regression::DistributedLinRegTracker tracker(k, tracker_options);

  nmc::sim::UniformRandomAssignment psi(k, /*seed=*/55);
  std::printf("%8s %26s %26s\n", "t", "tracked posterior mean",
              "exact posterior mean");
  for (int64_t t = 0; t < n; ++t) {
    const auto& s = data.samples[static_cast<size_t>(t)];
    exact.Update(s.x, s.y);
    tracker.ProcessUpdate(psi.NextSite(t, s.y), s.x, s.y);
    if ((t + 1) % 10000 == 0) {
      nmc::regression::Vector tracked_mean, exact_mean;
      if (tracker.PosteriorMean(&tracked_mean) &&
          exact.PosteriorMean(&exact_mean)) {
        std::printf("%8lld [%6.3f %6.3f %6.3f %6.3f] [%6.3f %6.3f %6.3f %6.3f]\n",
                    static_cast<long long>(t + 1), tracked_mean[0],
                    tracked_mean[1], tracked_mean[2], tracked_mean[3],
                    exact_mean[0], exact_mean[1], exact_mean[2],
                    exact_mean[3]);
      }
    }
  }

  std::printf("\ntrue generating weights: [%6.3f %6.3f %6.3f %6.3f]\n",
              data.true_weights[0], data.true_weights[1],
              data.true_weights[2], data.true_weights[3]);
  nmc::regression::Vector tracked_mean, exact_mean;
  tracker.PosteriorMean(&tracked_mean);
  exact.PosteriorMean(&exact_mean);
  std::printf("posterior-mean gap (tracked vs exact): %.4f\n",
              nmc::regression::NormDiff(tracked_mean, exact_mean));
  std::printf("messages: %lld over %d counters (%.1f per training example;\n"
              "shipping raw examples would cost %lld vector messages)\n",
              static_cast<long long>(tracker.stats().total()),
              dim * (dim + 1) / 2 + dim,
              static_cast<double>(tracker.stats().total()) /
                  static_cast<double>(n),
              static_cast<long long>(n));
  return 0;
}
