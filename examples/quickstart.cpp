// Quickstart: track a non-monotonic sum across distributed sites.
//
// Four sites receive +1/-1 updates (think: net inventory changes, queue
// arrivals minus departures, upvotes minus downvotes) and the coordinator
// keeps a continuous estimate within 10% relative accuracy. The stream is
// non-monotonic and the drift is unknown to the algorithm — it estimates
// the drift online (GPSearch) and adapts its strategy, ending up far
// cheaper than forwarding every update.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "core/nonmonotonic_counter.h"
#include "sim/assignment.h"
#include "streams/bernoulli.h"

int main() {
  const int64_t n = 200000;  // stream length (the sampling law needs it)
  const int k = 4;           // number of sites

  // 1. Configure the counter: 10% relative accuracy over a horizon of n.
  //    kUnknownUnitDrift enables the full algorithm: conservative Phase-1
  //    sampling + online drift estimation + the Phase-2 handoff.
  nmc::core::CounterOptions options;
  options.epsilon = 0.1;
  options.horizon_n = n;
  options.drift_mode = nmc::core::DriftMode::kUnknownUnitDrift;
  options.seed = 42;
  nmc::core::NonMonotonicCounter counter(k, options);

  // 2. A workload: ±1 updates with a drift of +0.3 the algorithm does NOT
  //    know (65% increments, 35% decrements), scattered over sites by an
  //    adversarial load balancer.
  const auto stream = nmc::streams::BernoulliStream(n, /*mu=*/0.3, /*seed=*/7);
  nmc::sim::UniformRandomAssignment psi(k, /*seed=*/11);

  // 3. Feed updates; the estimate is valid after every single one.
  double exact = 0.0;
  for (int64_t t = 0; t < n; ++t) {
    const double value = stream[static_cast<size_t>(t)];
    counter.ProcessUpdate(psi.NextSite(t, value), value);
    exact += value;
    if ((t + 1) % 50000 == 0) {
      std::printf("t = %7lld   exact = %8.0f   estimate = %8.0f\n",
                  static_cast<long long>(t + 1), exact, counter.Estimate());
    }
  }

  // 4. What the algorithm figured out on its own, and what it cost.
  const auto diag = counter.diagnostics();
  const auto& stats = counter.stats();
  std::printf("\ndrift estimated online : %.3f (true 0.3), resolved at t = %lld\n",
              diag.mu_hat, static_cast<long long>(diag.phase2_switch_time));
  std::printf("final exact sum        : %.0f\n", exact);
  std::printf("final estimate         : %.0f\n", counter.Estimate());
  std::printf("messages used          : %lld (site->coord %lld, coord->site %lld)\n",
              static_cast<long long>(stats.total()),
              static_cast<long long>(stats.site_to_coordinator),
              static_cast<long long>(stats.coordinator_to_site));
  std::printf("forward-everything     : %lld\n", static_cast<long long>(n));
  std::printf("savings                : %.1fx\n",
              static_cast<double>(n) / static_cast<double>(stats.total()));
  return 0;
}
