// E11 — the mu = 1 special case: on an all-increments stream the
// non-monotonic counter must match the dedicated HYZ monotonic counter
// [12] up to polylog factors (Theorem 3.3 with mu = 1 reduces to the
// Θ̃(sqrt(k)/eps) bound). The harness compares our counter (in drift mode)
// with a native HYZ instance and ExactSync across k and eps.

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/exact_sync.h"
#include "bench/bench_util.h"
#include "common/table.h"
#include "hyz/hyz_counter.h"

namespace {

using nmc::bench::Banner;
using nmc::bench::CounterFactory;
using nmc::bench::HyzFactory;
using nmc::bench::RegistryFactory;
using nmc::bench::Repeat;
using nmc::common::Format;

std::function<std::vector<double>(int)> OnesStream(int64_t n) {
  return [n](int) { return std::vector<double>(static_cast<size_t>(n), 1.0); };
}

void SweepK() {
  std::printf("\n-- monotonic stream: our counter vs HYZ vs ExactSync "
              "(n = 2^17, eps = 0.1) --\n");
  const int64_t n = 1 << 17;
  const double epsilon = 0.1;
  nmc::common::Table table({"k", "ours", "hyz", "exact", "ours/hyz",
                            "violations"});
  std::vector<double> ks, hyz_costs;
  for (int k : {1, 16, 64, 256}) {
    nmc::core::CounterOptions options;
    options.epsilon = epsilon;
    options.horizon_n = n;
    options.drift_mode = nmc::core::DriftMode::kUnknownUnitDrift;
    options.seed = 45;
    const auto ours = Repeat(3, k, epsilon, OnesStream(n),
                             CounterFactory(k, options));
    nmc::hyz::HyzOptions hyz_options;
    hyz_options.epsilon = epsilon;
    hyz_options.delta = 1e-6;
    hyz_options.seed = 4500;
    const auto hyz =
        Repeat(3, k, epsilon, OnesStream(n), HyzFactory(k, hyz_options));
    table.AddRow({Format(static_cast<int64_t>(k)),
                  Format(ours.mean_messages, 0), Format(hyz.mean_messages, 0),
                  Format(static_cast<double>(n), 0),
                  Format(ours.mean_messages / hyz.mean_messages, 1),
                  Format(static_cast<int64_t>(ours.trials_with_violation +
                                              hyz.trials_with_violation))});
    ks.push_back(static_cast<double>(k));
    hyz_costs.push_back(hyz.mean_messages);
  }
  table.Print();
  nmc::bench::PrintFit("hyz messages vs k", ks, hyz_costs);
  std::printf("theory: both sublinear; ours pays the Phase-1 overhead (the\n"
              "GPSearch warm-up and guard syncs) before handing off to its\n"
              "internal HYZ pair — a polylog-factor premium, flat in n.\n"
              "HYZ's per-round rate is ~(sqrt(k L) + L)/eps, so the sqrt(k)\n"
              "growth emerges once k >> L = log(1/delta) ~ 24\n");
}

void SweepEpsilon() {
  std::printf("\n-- HYZ cost vs eps (k = 4, n = 2^17) --\n");
  const int64_t n = 1 << 17;
  const int k = 4;
  nmc::common::Table table({"eps", "hyz_msgs", "msgs*eps"});
  std::vector<double> inv_eps, costs;
  for (double epsilon : {0.02, 0.05, 0.1, 0.2}) {
    nmc::hyz::HyzOptions hyz_options;
    hyz_options.epsilon = epsilon;
    hyz_options.delta = 1e-6;
    hyz_options.seed = 4600;
    const auto hyz =
        Repeat(3, k, epsilon, OnesStream(n), HyzFactory(k, hyz_options));
    table.AddRow({Format(epsilon, 3), Format(hyz.mean_messages, 0),
                  Format(hyz.mean_messages * epsilon, 1)});
    inv_eps.push_back(1.0 / epsilon);
    costs.push_back(hyz.mean_messages);
  }
  table.Print();
  nmc::bench::PrintFit("hyz messages vs 1/eps", inv_eps, costs);
  std::printf("theory: ~1/eps (exponent 1) plus the k log n round floor\n");
}

void SampledVsDeterministic() {
  std::printf("\n-- HYZ variants: sampled vs deterministic thresholds "
              "(n = 2^17, eps = 0.1) --\n");
  const int64_t n = 1 << 17;
  nmc::common::Table table({"k", "sampled", "deterministic", "violations"});
  for (int k : {1, 4, 16, 64, 256}) {
    auto make = [k](const char* name) {
      nmc::sim::ProtocolParams params;
      params.epsilon = 0.1;
      params.delta = 1e-6;
      params.seed = 4700;
      // seed_stride 1 replays HyzFactory's per-trial reseeding exactly.
      return RegistryFactory(name, k, params, /*seed_stride=*/1);
    };
    const auto sampled = Repeat(2, k, 0.1, OnesStream(n), make("hyz"));
    const auto det =
        Repeat(2, k, 0.1, OnesStream(n), make("hyz_deterministic"));
    table.AddRow({Format(static_cast<int64_t>(k)),
                  Format(sampled.mean_messages, 0),
                  Format(det.mean_messages, 0),
                  Format(static_cast<int64_t>(sampled.trials_with_violation +
                                              det.trials_with_violation))});
  }
  table.Print();
  std::printf("theory: per round the sampled variant costs ~(sqrt(kL)+L)/eps\n"
              "(L = log(1/delta) ~ 24) and the deterministic one ~2k/eps —\n"
              "deterministic wins while k = O(L), sampling wins beyond;\n"
              "this is the two-regime structure [12] describes\n");
}

}  // namespace

int main(int argc, char** argv) {
  nmc::bench::InitBench(argc, argv, "bench_e11_monotonic");
  Banner("E11 — mu = 1 special case vs the monotonic counter of [12]",
         "our counter matches HYZ's Θ̃(sqrt(k)/eps) up to polylog factors");
  SweepK();
  SweepEpsilon();
  SampledVsDeterministic();
  return nmc::bench::FinishBench();
}
