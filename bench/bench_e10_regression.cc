// E10 — Section 5.2: distributed Bayesian linear regression. d(d+1)/2 + d
// non-monotonic counters track the posterior's precision matrix and moment
// vector within per-entry relative accuracy eps, at total cost
// Õ(sqrt(k n) d^2 / eps). The harness sweeps d and n, comparing the
// recovered posterior mean against the exact streaming posterior and the
// generating weights, and reports the communication growth.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table.h"
#include "regression/bayes_linreg.h"
#include "regression/distributed_linreg.h"
#include "sim/assignment.h"
#include "streams/regression_data.h"

namespace {

using nmc::bench::Banner;
using nmc::common::Format;

struct RegressionRun {
  int64_t messages = 0;
  double mean_rel_error_vs_exact = 0.0;
  double mean_rel_error_vs_truth = 0.0;
  double precision_max_entry_rel_error = 0.0;
};

RegressionRun RunRegression(int64_t n, int dim, int k, uint64_t seed) {
  nmc::streams::RegressionDataOptions data_options;
  data_options.dim = dim;
  data_options.noise_precision = 25.0;
  data_options.seed = seed;
  const auto data = nmc::streams::GenerateRegressionData(n, data_options);

  nmc::regression::BayesLinRegOptions model;
  model.dim = dim;
  model.prior_variance = 10.0;
  model.noise_precision = 25.0;

  nmc::regression::ExactBayesLinReg exact(model);
  nmc::regression::DistributedLinRegOptions tracker_options;
  tracker_options.model = model;
  tracker_options.counter_epsilon = 0.05;
  tracker_options.horizon_n = n;
  tracker_options.response_bound = 16.0;
  tracker_options.seed = seed + 1;
  nmc::regression::DistributedLinRegTracker tracker(k, tracker_options);
  nmc::sim::RoundRobinAssignment psi(k);

  for (int64_t t = 0; t < n; ++t) {
    const auto& s = data.samples[static_cast<size_t>(t)];
    exact.Update(s.x, s.y);
    tracker.ProcessUpdate(psi.NextSite(t, s.y), s.x, s.y);
  }

  RegressionRun run;
  run.messages = tracker.stats().total();
  nmc::regression::Vector exact_mean, tracked_mean;
  if (exact.PosteriorMean(&exact_mean) && tracker.PosteriorMean(&tracked_mean)) {
    run.mean_rel_error_vs_exact =
        nmc::regression::NormDiff(tracked_mean, exact_mean) /
        std::max(1e-9, nmc::regression::Norm(exact_mean));
    run.mean_rel_error_vs_truth =
        nmc::regression::NormDiff(tracked_mean, data.true_weights) /
        std::max(1e-9, nmc::regression::Norm(data.true_weights));
  }
  const auto tracked_precision = tracker.TrackedPrecision();
  const auto& exact_precision = exact.precision();
  for (int i = 0; i < dim; ++i) {
    for (int j = 0; j < dim; ++j) {
      const double truth = exact_precision.At(i, j);
      if (std::fabs(truth) < 1.0) continue;
      run.precision_max_entry_rel_error =
          std::max(run.precision_max_entry_rel_error,
                   std::fabs(tracked_precision.At(i, j) - truth) /
                       std::fabs(truth));
    }
  }
  return run;
}

void SweepDim() {
  std::printf("\n-- posterior tracking vs dimension d (n = 16000, k = 4) --\n");
  nmc::common::Table table({"d", "counters", "messages", "msgs/d^2",
                            "mean_err_vs_exact", "prec_entry_err"});
  std::vector<double> ds, costs;
  for (int dim : {2, 4, 8}) {
    const auto run = RunRegression(16000, dim, 4, 41);
    const int64_t counters = dim * (dim + 1) / 2 + dim;
    table.AddRow({Format(static_cast<int64_t>(dim)), Format(counters),
                  Format(run.messages),
                  Format(static_cast<double>(run.messages) / (dim * dim), 0),
                  Format(run.mean_rel_error_vs_exact, 4),
                  Format(run.precision_max_entry_rel_error, 4)});
    ds.push_back(static_cast<double>(dim));
    costs.push_back(static_cast<double>(run.messages));
  }
  table.Print();
  nmc::bench::PrintFit("messages vs d", ds, costs);
  std::printf("theory: d(d+1)/2 + d counters -> messages ~ d^2 (exponent 2)\n");
}

void SweepN() {
  std::printf("\n-- posterior tracking vs n (d = 4, k = 4) --\n");
  nmc::common::Table table({"n", "messages", "msgs/n", "mean_err_vs_exact",
                            "mean_err_vs_truth"});
  std::vector<double> ns, costs;
  for (int64_t n : {4000, 16000, 64000}) {
    const auto run = RunRegression(n, 4, 4, 43);
    table.AddRow({Format(n), Format(run.messages),
                  Format(static_cast<double>(run.messages) / static_cast<double>(n), 2),
                  Format(run.mean_rel_error_vs_exact, 4),
                  Format(run.mean_rel_error_vs_truth, 4)});
    ns.push_back(static_cast<double>(n));
    costs.push_back(static_cast<double>(run.messages));
  }
  table.Print();
  nmc::bench::PrintFit("messages vs n", ns, costs);
  std::printf("theory: sublinear in n (the diagonal precision entries drift\n"
              "upward and get cheap; the error vs the exact posterior also\n"
              "reflects the conditioning of the precision matrix, as the\n"
              "paper cautions)\n");
}

}  // namespace

int main(int argc, char** argv) {
  nmc::bench::InitBench(argc, argv, "bench_e10_regression");
  Banner("E10 — Section 5.2: distributed Bayesian linear regression",
         "Õ(sqrt(k n) d^2/eps) messages to track the posterior continuously");
  SweepDim();
  SweepN();
  return nmc::bench::FinishBench();
}
