// E1 — Theorem 3.1: single-site non-monotonic counting of an i.i.d. ±1
// stream with zero drift costs O(sqrt(n)/eps * log n) messages while
// tracking within eps w.h.p. This harness sweeps n (growth exponent should
// approach 1/2) and eps (cost should grow as ~1/eps), and verifies the
// tracking guarantee held in every run.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table.h"
#include "streams/bernoulli.h"

namespace {

using nmc::bench::Banner;
using nmc::bench::CounterFactory;
using nmc::bench::Repeat;
using nmc::common::Format;

void SweepN() {
  std::printf("\n-- messages vs n (k = 1, eps = 0.25) --\n");
  const double epsilon = 0.25;
  const int trials = 5;
  nmc::common::Table table({"n", "messages", "stderr", "msgs/sqrt(n)",
                            "msgs/(sqrt(n)logn)", "violations",
                            "max_rel_err"});
  std::vector<double> ns, costs;
  for (int64_t n = 1 << 14; n <= (1 << 20); n <<= 1) {
    nmc::core::CounterOptions options;
    options.epsilon = epsilon;
    options.horizon_n = n;
    options.seed = 11;
    const auto summary = Repeat(
        trials, 1, epsilon,
        [n](int trial) {
          return nmc::streams::BernoulliStream(
              n, 0.0, 100 + static_cast<uint64_t>(trial));
        },
        CounterFactory(1, options));
    const double sqrt_n = std::sqrt(static_cast<double>(n));
    const double log_n = std::log(static_cast<double>(n));
    table.AddRow({Format(n), Format(summary.mean_messages, 0),
                  Format(summary.stderr_messages, 0),
                  Format(summary.mean_messages / sqrt_n, 1),
                  Format(summary.mean_messages / (sqrt_n * log_n), 2),
                  Format(static_cast<int64_t>(summary.trials_with_violation)),
                  Format(summary.max_rel_error, 4)});
    ns.push_back(static_cast<double>(n));
    costs.push_back(summary.mean_messages);
  }
  table.Print();
  nmc::bench::PrintFit("messages", ns, costs);
  std::printf("theory: exponent -> 0.5 as n -> inf (finite-n runs carry the\n"
              "log(n)/eps-wide rate-1 band around zero, which biases the\n"
              "fitted exponent slightly above 1/2)\n");
}

void SweepEpsilon() {
  std::printf("\n-- messages vs eps (k = 1, n = 2^18) --\n");
  const int64_t n = 1 << 18;
  const int trials = 3;
  nmc::common::Table table(
      {"eps", "messages", "msgs*eps", "violations", "max_rel_err"});
  std::vector<double> inv_eps, costs;
  for (double epsilon : {0.05, 0.1, 0.2, 0.4}) {
    nmc::core::CounterOptions options;
    options.epsilon = epsilon;
    options.horizon_n = n;
    options.seed = 13;
    const auto summary = Repeat(
        trials, 1, epsilon,
        [n](int trial) {
          return nmc::streams::BernoulliStream(
              n, 0.0, 200 + static_cast<uint64_t>(trial));
        },
        CounterFactory(1, options));
    table.AddRow({Format(epsilon, 3), Format(summary.mean_messages, 0),
                  Format(summary.mean_messages * epsilon, 0),
                  Format(static_cast<int64_t>(summary.trials_with_violation)),
                  Format(summary.max_rel_error, 4)});
    inv_eps.push_back(1.0 / epsilon);
    costs.push_back(summary.mean_messages);
  }
  table.Print();
  nmc::bench::PrintFit("messages vs 1/eps", inv_eps, costs);
  std::printf("theory: messages ~ 1/eps (exponent 1); at small eps the cost\n"
              "saturates at min(.., n) = %lld\n", static_cast<long long>(n));
}

}  // namespace

int main(int argc, char** argv) {
  nmc::bench::InitBench(argc, argv, "bench_e1_single_site");
  Banner("E1 — Theorem 3.1: single-site counter, i.i.d. input, zero drift",
         "messages = O(sqrt(n)/eps * log n), tracking holds w.p. 1-O(1/n)");
  SweepN();
  SweepEpsilon();
  return nmc::bench::FinishBench();
}
