// E13 — the quantitative failure model behind eq. (1). The per-sync error
// probability is exactly E[(1-p)^T] for T the two-sided exit time of the
// count from the eps-ball; this harness shows the closed form, the exact
// DP, and Monte Carlo agreeing, then evaluates the failure the default
// alpha/beta (and the paper's alpha > 9/2) imply across n — the analysis
// that justifies the constants used everywhere else in the suite, and the
// reason the beta = 1 "cheaper" variant in E12 visibly violates.

#include <cmath>
#include <cstdio>

#include "analysis/first_passage.h"
#include "bench/bench_util.h"
#include "common/table.h"

namespace {

using nmc::bench::Banner;
using nmc::common::Format;
using nmc::common::FormatSci;

void ThreeWayAgreement() {
  std::printf("\n-- per-sync failure: closed form vs exact DP vs Monte Carlo "
              "--\n");
  nmc::common::Table table({"b", "p", "closed_form", "exact_dp",
                            "monte_carlo"});
  for (int64_t b : {10, 30, 100}) {
    for (double a : {2.0, 8.0}) {
      const double p = a / static_cast<double>(b * b);
      const double closed = nmc::analysis::SyncFailureClosedForm(b, p);
      const double dp = nmc::analysis::SyncFailureFromDp(b, 0.0, p, 2000000);
      const double mc =
          nmc::analysis::SyncFailureMonteCarlo(b, 0.0, p, 400000, 11);
      table.AddRow({Format(b), FormatSci(p), FormatSci(closed), FormatSci(dp),
                    FormatSci(mc)});
    }
  }
  table.Print();
  std::printf("theory: failure = 1/cosh(b*acosh(1/(1-p))) ~ 2 e^{-b sqrt(2p)}\n"
              "— three independent computations agree to sampling error\n");
}

void ExitTimeMoments() {
  std::printf("\n-- exit-time mean: E[T] = b^2 (symmetric), ~b/mu (drifted) "
              "--\n");
  nmc::common::Table table({"b", "mu", "E[T] (exact DP)", "b^2", "b/mu"});
  for (int64_t b : {10, 30}) {
    for (double mu : {0.0, 0.1, 0.5}) {
      const double mean =
          nmc::analysis::ExitTimeMean(b, mu, 200 * b * b);
      table.AddRow({Format(b), Format(mu, 2), Format(mean, 1),
                    Format(static_cast<int64_t>(b * b)),
                    mu > 0.0 ? Format(static_cast<double>(b) / mu, 1) : "-"});
    }
  }
  table.Print();
  std::printf("theory: the drift turns the b^2 diffusive exit into a b/mu\n"
              "ballistic one — the gap the Section 3.2 guard must cover\n");
}

void ImpliedFailureAcrossN() {
  std::printf("\n-- eq. (1) per-sync failure across n and (alpha, beta) --\n");
  nmc::common::Table table({"n", "a=2,b=2 (ours)", "a=4.5,b=2 (paper)",
                            "a=2,b=1", "a=2,b=0", "budget 1/n^2"});
  for (int64_t n : {1 << 12, 1 << 16, 1 << 20}) {
    // Evaluate at the radius where eq. (1)'s rate is ~1/8 — the start of
    // the sampled regime, which is where failures concentrate.
    const double log_n = std::log(static_cast<double>(n));
    const int64_t radius = static_cast<int64_t>(4.0 * log_n);
    table.AddRow(
        {Format(n),
         FormatSci(nmc::analysis::Eq1FailureAtRadius(radius, 2.0, 2.0, n)),
         FormatSci(nmc::analysis::Eq1FailureAtRadius(radius, 4.5, 2.0, n)),
         FormatSci(nmc::analysis::Eq1FailureAtRadius(radius, 2.0, 1.0, n)),
         FormatSci(nmc::analysis::Eq1FailureAtRadius(radius, 2.0, 0.0, n)),
         FormatSci(1.0 / (static_cast<double>(n) * static_cast<double>(n)))});
  }
  table.Print();
  std::printf(
      "theory: beta = 2 keeps the failure at ~n^{-sqrt(2 alpha)} — within\n"
      "the 1/n^2 per-event budget at alpha = 2 and far below it at the\n"
      "paper's alpha > 9/2; beta <= 1 decays only quasi-polynomially and\n"
      "is exactly what E12's beta ablation shows violating at runtime\n");
}

}  // namespace

int main(int argc, char** argv) {
  nmc::bench::InitBench(argc, argv, "bench_e13_failure_model");
  Banner("E13 — the sampling law's failure model, computed exactly",
         "per-sync failure = E[(1-p)^T], T the eps-ball exit time");
  ThreeWayAgreement();
  ExitTimeMoments();
  ImpliedFailureAcrossN();
  return nmc::bench::FinishBench();
}
