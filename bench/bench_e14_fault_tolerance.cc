// E14 — fault tolerance. The paper's protocols assume reliable channels;
// this harness measures what actually happens when that assumption breaks
// (Bernoulli loss, bounded delay, site crash windows) and what the
// coordinator-driven resync wrapper (sim::ReliableProtocol) buys back, in
// violation fraction and in message overhead. Degradation curves for the
// raw counter and the wrapped one are reported side by side; the
// perfect-channel column doubles as the bit-identity anchor (loss = 0 is
// the exact run every other experiment performs).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baselines/exact_sync.h"
#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/table.h"
#include "core/nonmonotonic_counter.h"
#include "runtime/run.h"
#include "sim/channel.h"
#include "sim/reliable.h"
#include "streams/bernoulli.h"

namespace {

using nmc::bench::Banner;
using nmc::bench::Repeat;
using nmc::common::Format;

constexpr int64_t kN = 1 << 15;
constexpr double kEpsilon = 0.25;
constexpr double kDrift = 0.3;  // E[X]: the count grows, so relative
                                // error (and thus violations) is
                                // well-defined for most of the run

std::function<std::vector<double>(int)> DriftStream() {
  return [](int trial) {
    return nmc::streams::BernoulliStream(kN, kDrift,
                                         1500 + static_cast<uint64_t>(trial));
  };
}

nmc::sim::ChannelConfig LossChannel(double loss, uint64_t seed) {
  nmc::sim::ChannelConfig config;
  config.kind = nmc::sim::ChannelConfig::Kind::kLoss;
  config.loss = loss;
  config.seed = seed;
  return config;
}

nmc::core::CounterOptions BaseOptions(const nmc::sim::ChannelConfig& channel) {
  nmc::core::CounterOptions options;
  options.epsilon = kEpsilon;
  options.horizon_n = kN;
  options.seed = 1400;
  options.channel = channel;
  return options;
}

/// The counter exposed to the faulty channel with no recovery help.
std::function<std::unique_ptr<nmc::sim::Protocol>(int)> RawCounter(
    int num_sites, const nmc::sim::ChannelConfig& channel) {
  return [num_sites, channel](int trial) {
    nmc::core::CounterOptions options = BaseOptions(channel);
    options.seed += static_cast<uint64_t>(trial) * 7919;
    if (options.channel.faulty()) {
      options.channel.seed += static_cast<uint64_t>(trial) * 7919;
    }
    return std::make_unique<nmc::core::NonMonotonicCounter>(num_sites,
                                                            options);
  };
}

/// The same counter under the resync wrapper (default backoff schedule).
std::function<std::unique_ptr<nmc::sim::Protocol>(int)> WrappedCounter(
    int num_sites, const nmc::sim::ChannelConfig& channel) {
  auto make_inner = RawCounter(num_sites, channel);
  return [make_inner](int trial) -> std::unique_ptr<nmc::sim::Protocol> {
    return std::make_unique<nmc::sim::ReliableProtocol>(
        make_inner(trial), nmc::sim::ReliableOptions{});
  };
}

void LossSweep() {
  std::printf("\n-- Bernoulli loss: violation fraction and message overhead "
              "(k = 4, n = 2^15, eps = 0.25) --\n");
  const int k = 4;
  const auto perfect =
      Repeat(3, k, kEpsilon, DriftStream(), RawCounter(k, {}));
  nmc::common::Table table({"loss", "raw_viol", "reliable_viol", "raw_msgs",
                            "reliable_msgs", "msg_overhead"});
  table.AddRow({Format(0.0, 2), Format(perfect.violation_fraction, 4),
                Format(perfect.violation_fraction, 4),
                Format(perfect.mean_messages, 0),
                Format(perfect.mean_messages, 0), Format(1.0, 2)});
  for (double loss : {0.01, 0.02, 0.05, 0.1, 0.2}) {
    const auto channel = LossChannel(loss, 1410);
    const auto raw = Repeat(3, k, kEpsilon, DriftStream(),
                            RawCounter(k, channel));
    const auto reliable = Repeat(3, k, kEpsilon, DriftStream(),
                                 WrappedCounter(k, channel));
    table.AddRow({Format(loss, 2), Format(raw.violation_fraction, 4),
                  Format(reliable.violation_fraction, 4),
                  Format(raw.mean_messages, 0),
                  Format(reliable.mean_messages, 0),
                  Format(reliable.mean_messages / perfect.mean_messages, 2)});
  }
  table.Print();
  std::printf("expected: the raw counter's violation fraction grows with the\n"
              "loss rate (every lost sync leaves a stale coordinator); the\n"
              "wrapper holds it near the perfect-channel floor for a modest\n"
              "constant-factor message overhead\n");
}

void CrashSweep() {
  std::printf("\n-- site crashes: fraction of sites silenced for a 2048-tick "
              "window (k = 8) --\n");
  const int k = 8;
  nmc::common::Table table({"crashed_sites", "raw_viol", "reliable_viol",
                            "raw_msgs", "reliable_msgs"});
  for (int crashed : {0, 1, 2, 4}) {
    nmc::sim::ChannelConfig channel;
    if (crashed > 0) {
      channel.kind = nmc::sim::ChannelConfig::Kind::kCrash;
      for (int site = 0; site < crashed; ++site) {
        // Staggered windows: site i is dark for ticks [4096+2048i,
        // 6144+2048i) — losses arrive as separate events, not one burst.
        const int64_t start = 4096 + 2048 * static_cast<int64_t>(site);
        channel.crashes.push_back(
            nmc::sim::CrashInterval{site, start, start + 2048});
      }
    }
    const auto raw = Repeat(3, k, kEpsilon, DriftStream(),
                            RawCounter(k, channel));
    const auto reliable = Repeat(3, k, kEpsilon, DriftStream(),
                                 WrappedCounter(k, channel));
    table.AddRow({Format(static_cast<int64_t>(crashed)),
                  Format(raw.violation_fraction, 4),
                  Format(reliable.violation_fraction, 4),
                  Format(raw.mean_messages, 0),
                  Format(reliable.mean_messages, 0)});
  }
  table.Print();
  std::printf("expected: a crashed site keeps counting locally, so the raw\n"
              "coordinator is stale for the whole window; the wrapper's\n"
              "retries keep probing and land a clean collect as soon as the\n"
              "site returns\n");
}

void DelaySweep() {
  std::printf("\n-- bounded delay: messages late by <= 4 ticks, never lost "
              "(k = 4) --\n");
  const int k = 4;
  nmc::common::Table table({"delay_prob", "raw_viol", "reliable_viol",
                            "raw_msgs", "reliable_msgs"});
  for (double probability : {0.05, 0.2, 0.5}) {
    nmc::sim::ChannelConfig channel;
    channel.kind = nmc::sim::ChannelConfig::Kind::kDelay;
    channel.delay_probability = probability;
    channel.max_delay = 4;
    channel.seed = 1420;
    const auto raw = Repeat(3, k, kEpsilon, DriftStream(),
                            RawCounter(k, channel));
    const auto reliable = Repeat(3, k, kEpsilon, DriftStream(),
                                 WrappedCounter(k, channel));
    table.AddRow({Format(probability, 2), Format(raw.violation_fraction, 4),
                  Format(reliable.violation_fraction, 4),
                  Format(raw.mean_messages, 0),
                  Format(reliable.mean_messages, 0)});
  }
  table.Print();
  std::printf("expected: delay alone is far milder than loss — estimates lag\n"
              "by at most max_delay ticks — but the wrapper still treats\n"
              "in-flight resync traffic as dirty and re-probes\n");
}

void ResyncDiagnostics() {
  std::printf("\n-- resync wrapper internals across loss rates (k = 4, one "
              "run each) --\n");
  const int k = 4;
  nmc::common::Table table({"loss", "loss_events", "resyncs", "retries",
                            "recoveries", "abandoned", "deadline_ticks"});
  for (double loss : {0.02, 0.05, 0.1, 0.2}) {
    nmc::sim::ReliableProtocol protocol(
        RawCounter(k, LossChannel(loss, 1430))(0),
        nmc::sim::ReliableOptions{});
    const std::vector<double> stream = DriftStream()(0);
    for (int64_t t = 0; t < kN; ++t) {
      protocol.ProcessUpdate(static_cast<int>(t % k),
                             stream[static_cast<size_t>(t)]);
    }
    const nmc::sim::ReliableDiagnostics& d = protocol.diagnostics();
    table.AddRow({Format(loss, 2), Format(d.loss_events), Format(d.resyncs),
                  Format(d.retries), Format(d.recoveries),
                  Format(d.abandoned),
                  Format(protocol.RecoveryDeadlineTicks())});
  }
  table.Print();
  std::printf("expected: resyncs/retries scale with the loss rate; nearly\n"
              "every loss event ends in a recovery well inside the deadline\n"
              "(abandonment stays a rare escape hatch)\n");
}

// ---------------------------------------------------------------------------
// --transport=sockets: the same fault families injected at the socket
// layer against real forked site processes. The protocol under test is the
// exact-sync baseline (estimate == sum of consumed updates, bit for bit),
// so the checker epsilon can be tiny: any lost mass on the raw link shows
// up as violations, while the reliable link's go-back-N replay keeps the
// run exactly violation-free. That is the acceptance contract — this mode
// exits nonzero if either side of it fails.
// ---------------------------------------------------------------------------

/// Small checker tolerance for the exact protocol: 1% socket loss drops
/// ~1% of |S|, far above this, while the reliable run is bit-exact.
constexpr double kSocketEps = 0.002;
constexpr int kSocketSites = 4;
constexpr int64_t kSocketDeadline = 1 << 14;

nmc::runtime::RunResult SocketRun(const std::vector<double>& stream,
                                  bool reliable,
                                  const nmc::runtime::SocketFaultOptions&
                                      faults) {
  nmc::baselines::ExactSyncProtocol protocol(kSocketSites);
  nmc::runtime::RunConfig config;
  config.protocol = &protocol;
  config.stream = &stream;
  config.sockets.reliable = reliable;
  config.sockets.faults = faults;
  config.sockets.epsilon = kSocketEps;
  config.sockets.rel_error_floor = 32.0;  // skip the near-zero-sum prefix
  config.sockets.resync_deadline_updates = kSocketDeadline;
  return nmc::runtime::RunWithTransport(
      nmc::runtime::TransportKind::kSockets, config);
}

bool SocketLossSweep() {
  std::printf("\n-- socket-level Bernoulli loss: raw link vs go-back-N "
              "reliable link (k = %d, n = 2^15, exact_sync, eps = %.3f) "
              "--\n",
              kSocketSites, kSocketEps);
  const std::vector<double> stream = DriftStream()(0);
  nmc::common::Table table({"loss", "raw_viol", "raw_lost", "rel_viol",
                            "rel_lost", "rel_nacks", "rel_dups"});
  bool ok = true;
  for (double loss : {0.0, 0.01, 0.05}) {
    nmc::runtime::SocketFaultOptions faults;
    faults.loss = loss;
    faults.seed = 1440 + static_cast<uint64_t>(loss * 1000.0);
    const auto raw = SocketRun(stream, /*reliable=*/false, faults);
    const auto rel = SocketRun(stream, /*reliable=*/true, faults);
    table.AddRow({Format(loss, 2),
                  Format(raw.sockets.violation_steps),
                  Format(raw.sockets.updates_lost),
                  Format(rel.sockets.violation_steps),
                  Format(rel.sockets.updates_lost),
                  Format(rel.sockets.nacks_sent),
                  Format(rel.sockets.duplicate_updates)});
    if (rel.sockets.violation_steps != 0 || rel.sockets.updates_lost != 0 ||
        rel.sockets.timed_out || rel.serving.updates != kN) {
      std::printf("FAIL: reliable link at loss %.2f is not exact "
                  "(viol=%lld lost=%lld updates=%lld timed_out=%d)\n",
                  loss, static_cast<long long>(rel.sockets.violation_steps),
                  static_cast<long long>(rel.sockets.updates_lost),
                  static_cast<long long>(rel.serving.updates),
                  rel.sockets.timed_out ? 1 : 0);
      ok = false;
    }
    if (loss > 0.0 && raw.sockets.violation_steps == 0) {
      std::printf("FAIL: raw link at loss %.2f produced no violations "
                  "(lost=%lld)\n",
                  loss, static_cast<long long>(raw.sockets.updates_lost));
      ok = false;
    }
    if (loss > 0.0) {
      nmc::bench::RecordMetric(
          "sockets_raw_viol_loss" + std::to_string(
              static_cast<int>(loss * 100.0)),
          static_cast<double>(raw.sockets.violation_steps));
    }
  }
  table.Print();
  std::printf("expected: the raw link loses ~loss*n updates and violates "
              "the\n%.3f-tracking bound almost immediately; the reliable "
              "link NACKs\nevery gap, re-consumes the retransmissions "
              "in order and finishes\nbit-exact (zero violations, zero "
              "lost)\n",
              kSocketEps);
  return ok;
}

bool SocketCrashSweep() {
  std::printf("\n-- SIGKILL mid-run: respawn-and-resync on the reliable "
              "link vs dead-forever on the raw link (k = %d) --\n",
              kSocketSites);
  const std::vector<double> stream = DriftStream()(0);
  nmc::runtime::SocketFaultOptions faults;
  faults.kills.push_back(nmc::runtime::SiteKillSpec{1, 2048});
  faults.kills.push_back(nmc::runtime::SiteKillSpec{2, 4096});
  const auto rel = SocketRun(stream, /*reliable=*/true, faults);
  const auto raw = SocketRun(stream, /*reliable=*/false, faults);
  nmc::common::Table table({"link", "kills", "respawns", "recovered",
                            "max_recovery", "viol", "updates", "lost"});
  table.AddRow({"reliable", Format(rel.sockets.kills_delivered),
                Format(rel.sockets.respawns),
                rel.sockets.all_kills_recovered ? "yes" : "no",
                Format(rel.sockets.max_recovery_updates),
                Format(rel.sockets.violation_steps),
                Format(rel.serving.updates),
                Format(rel.sockets.updates_lost)});
  table.AddRow({"raw", Format(raw.sockets.kills_delivered),
                Format(raw.sockets.respawns),
                raw.sockets.all_kills_recovered ? "yes" : "no",
                Format(raw.sockets.max_recovery_updates),
                Format(raw.sockets.violation_steps),
                Format(raw.serving.updates),
                Format(raw.sockets.updates_lost)});
  table.Print();
  bool ok = true;
  if (!rel.sockets.all_kills_recovered || rel.sockets.respawns < 2 ||
      rel.sockets.violation_steps != 0 || rel.serving.updates != kN ||
      rel.sockets.max_recovery_updates > kSocketDeadline) {
    std::printf("FAIL: reliable link did not recover both kills within "
                "%lld updates (recovered=%d respawns=%lld "
                "max_recovery=%lld viol=%lld updates=%lld)\n",
                static_cast<long long>(kSocketDeadline),
                rel.sockets.all_kills_recovered ? 1 : 0,
                static_cast<long long>(rel.sockets.respawns),
                static_cast<long long>(rel.sockets.max_recovery_updates),
                static_cast<long long>(rel.sockets.violation_steps),
                static_cast<long long>(rel.serving.updates));
    ok = false;
  }
  if (raw.sockets.all_kills_recovered || raw.sockets.respawns != 0 ||
      raw.serving.updates >= kN) {
    std::printf("FAIL: raw link unexpectedly recovered from SIGKILL "
                "(respawns=%lld updates=%lld)\n",
                static_cast<long long>(raw.sockets.respawns),
                static_cast<long long>(raw.serving.updates));
    ok = false;
  }
  nmc::bench::RecordMetric(
      "sockets_max_recovery_updates",
      static_cast<double>(rel.sockets.max_recovery_updates));
  std::printf("expected: the reliable coordinator sees EOF, reforks the "
              "site at its\nconsumption cursor and the replacement "
              "finishes the shard exactly\n(zero violations); raw kills "
              "truncate the shard — the tail is lost\nand the run still "
              "tears down cleanly\n");
  return ok;
}

bool SocketSweeps() {
  Banner("E14 — fault injection over real sockets: forked sites, framed "
         "wire, loss and SIGKILL at the OS layer",
         "the sim fault channels' process-level twins");
  bool ok = SocketLossSweep();
  ok = SocketCrashSweep() && ok;
  if (!ok) {
    std::printf("\nE14 sockets acceptance FAILED (see FAIL lines above)\n");
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  nmc::bench::InitBench(argc, argv, "bench_e14_fault_tolerance");
  if (nmc::bench::BenchTransport() ==
      nmc::runtime::TransportKind::kSockets) {
    const bool ok = SocketSweeps();
    const int json_status = nmc::bench::FinishBench();
    return ok ? json_status : 1;
  }
  Banner("E14 — fault injection: loss, delay, and crashes vs the resync "
         "wrapper",
         "graceful degradation beyond the paper's reliable-channel model");
  LossSweep();
  CrashSweep();
  DelaySweep();
  ResyncDiagnostics();
  return nmc::bench::FinishBench();
}
