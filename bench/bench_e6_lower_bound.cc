// E6 — Theorems 4.1 / 4.2 / 4.5: the sample-path lower bounds. Any
// correct tracker must communicate on (essentially) every visit of the
// count to the error-sensitive region E = {|s| <= 1/eps} — so the measured
// occupancy of E lower-bounds E[messages]. This harness measures the
// occupancy growth in n (Omega(sqrt(n)/eps)), its drift dependence
// (Omega(min{1/(eps|mu|), sqrt(n)/eps})), the k-site phase version
// (Theorem 4.5), and the ratio of the algorithm's actual cost to the
// measured bound (should be a polylog factor).

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/statistics.h"
#include "common/table.h"
#include "core/lower_bound.h"
#include "streams/bernoulli.h"

namespace {

using nmc::bench::Banner;
using nmc::common::Format;

double MeanOccupancy(int64_t n, double mu, double radius, int trials,
                     uint64_t seed_base) {
  nmc::common::RunningStat stat;
  for (int trial = 0; trial < trials; ++trial) {
    const auto stream = nmc::streams::BernoulliStream(
        n, mu, seed_base + static_cast<uint64_t>(trial));
    stat.Add(static_cast<double>(nmc::core::CountOccupancy(stream, radius)));
  }
  return stat.mean();
}

void OccupancyVsN() {
  std::printf("\n-- E-occupancy vs n (mu = 0, eps = 0.1 -> radius 10) --\n");
  nmc::common::Table table({"n", "occupancy", "occ/sqrt(n)"});
  std::vector<double> ns, occs;
  for (int64_t n = 1 << 12; n <= (1 << 20); n <<= 2) {
    const double occ = MeanOccupancy(n, 0.0, 10.0, 16, 1000);
    table.AddRow({Format(n), Format(occ, 0),
                  Format(occ / std::sqrt(static_cast<double>(n)), 2)});
    ns.push_back(static_cast<double>(n));
    occs.push_back(occ);
  }
  table.Print();
  nmc::bench::PrintFit("occupancy", ns, occs);
  std::printf("theory: exponent 1/2 — Theorem 4.1's Omega(sqrt(n)/eps)\n");
}

void OccupancyVsEpsilon() {
  std::printf("\n-- E-occupancy vs radius 1/eps (n = 2^18, mu = 0) --\n");
  nmc::common::Table table({"eps", "radius", "occupancy", "occ*eps"});
  std::vector<double> radii, occs;
  for (double eps : {0.4, 0.2, 0.1, 0.05, 0.025}) {
    const double occ = MeanOccupancy(1 << 18, 0.0, 1.0 / eps, 12, 2000);
    table.AddRow({Format(eps, 3), Format(1.0 / eps, 1), Format(occ, 0),
                  Format(occ * eps, 0)});
    radii.push_back(1.0 / eps);
    occs.push_back(occ);
  }
  table.Print();
  nmc::bench::PrintFit("occupancy vs 1/eps", radii, occs);
  std::printf("theory: exponent 1 — the bound scales as 1/eps\n");
}

void OccupancyVsDrift() {
  std::printf("\n-- E-occupancy vs drift mu (n = 2^18, eps = 0.1) --\n");
  const int64_t n = 1 << 18;
  nmc::common::Table table({"mu", "occupancy", "min(1/(eps mu), sqrt(n)/eps)"});
  for (double mu : {0.0, 0.001, 0.004, 0.016, 0.064, 0.25, 1.0}) {
    const double occ = MeanOccupancy(n, mu, 10.0, 12, 3000);
    const double theory =
        mu == 0.0 ? std::sqrt(static_cast<double>(n)) / 0.1
                  : std::min(1.0 / (0.1 * mu),
                             std::sqrt(static_cast<double>(n)) / 0.1);
    table.AddRow({Format(mu, 3), Format(occ, 0), Format(theory, 0)});
  }
  table.Print();
  std::printf("theory: Theorem 4.2 — occupancy (and hence the bound) decays\n"
              "as 1/(eps*mu) once mu >> 1/sqrt(n)\n");
}

void PhaseOccupancyVsK() {
  std::printf("\n-- Theorem 4.5 phase bound: k * phase-occupancy vs k "
              "(n = 2^18, eps = 0.1) --\n");
  const int64_t n = 1 << 18;
  nmc::common::Table table({"k", "phases_counted", "k*phases (LB msgs)"});
  for (int64_t k : {4, 16, 64, 256}) {
    nmc::common::RunningStat stat;
    for (int trial = 0; trial < 8; ++trial) {
      const auto stream = nmc::streams::BernoulliStream(
          n, 0.0, 4000 + static_cast<uint64_t>(trial));
      stat.Add(static_cast<double>(
          nmc::core::CountPhaseOccupancy(stream, k, 0.1)));
    }
    table.AddRow({Format(k), Format(stat.mean(), 0),
                  Format(stat.mean() * static_cast<double>(k), 0)});
  }
  table.Print();
  std::printf("theory: k * phases ~ sqrt(k n)/eps: each counted phase forces\n"
              "Theta(k) messages (the tracking-k-inputs reduction)\n");
}

void AlgorithmVsBound() {
  std::printf("\n-- our algorithm's cost vs the measured lower bound --\n");
  const double epsilon = 0.25;
  nmc::common::Table table({"n", "lower_bound", "algorithm", "ratio"});
  for (int64_t n = 1 << 14; n <= (1 << 20); n <<= 2) {
    const double occ = MeanOccupancy(n, 0.0, 1.0 / epsilon, 8, 5000);
    nmc::core::CounterOptions options;
    options.epsilon = epsilon;
    options.horizon_n = n;
    options.seed = 29;
    const auto summary = nmc::bench::Repeat(
        3, 1, epsilon,
        [n](int trial) {
          return nmc::streams::BernoulliStream(
              n, 0.0, 5000 + static_cast<uint64_t>(trial));
        },
        nmc::bench::CounterFactory(1, options));
    table.AddRow({Format(n), Format(occ, 0),
                  Format(summary.mean_messages, 0),
                  Format(summary.mean_messages / occ, 2)});
  }
  table.Print();
  std::printf("theory: upper and lower bounds match up to polylog factors,\n"
              "so the ratio should stay bounded (and grow only slowly)\n");
}

}  // namespace

int main(int argc, char** argv) {
  nmc::bench::InitBench(argc, argv, "bench_e6_lower_bound");
  Banner("E6 — Theorems 4.1/4.2/4.5: sample-path lower bounds",
         "E[messages] = Omega(min{sqrt(k n)/eps, n}); drift Omega(1/(eps mu))");
  OccupancyVsN();
  OccupancyVsEpsilon();
  OccupancyVsDrift();
  PhaseOccupancyVsK();
  AlgorithmVsBound();
  return nmc::bench::FinishBench();
}
