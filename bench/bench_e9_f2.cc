// E9 — Corollary 5.1: continuous tracking of the second frequency moment
// F2 with decrements over randomly ordered streams, via the fast AMS
// sketch with one non-monotonic counter per cell. Upper bound
// Õ(sqrt(k n)/eps^2), lower bound Omega(min{sqrt(k n)/eps, n}). The
// harness sweeps n and k, reporting communication and the tracked
// estimate's relative error against exact F2 at checkpoints.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/statistics.h"
#include "common/table.h"
#include "sim/assignment.h"
#include "sketch/distributed_f2.h"
#include "streams/items.h"

namespace {

using nmc::bench::Banner;
using nmc::common::Format;

struct F2RunResult {
  int64_t messages = 0;
  double final_rel_error = 0.0;
  double max_checkpoint_rel_error = 0.0;
};

F2RunResult RunF2(int64_t n, int k, uint64_t seed) {
  const int64_t universe = 256;
  const auto updates = nmc::streams::PermutedItemStream(
      nmc::streams::ZipfTurnstileStream(n, universe, 1.1, 0.2, seed),
      seed + 1);
  const auto exact_prefix = nmc::streams::ExactF2Prefix(updates, universe);

  nmc::sketch::DistributedF2Options options;
  options.rows = 5;
  options.cols = 64;
  options.counter_epsilon = 0.1;
  options.horizon_n = n;
  options.seed = seed + 2;
  nmc::sketch::DistributedF2Tracker tracker(k, options);
  nmc::sim::RoundRobinAssignment psi(k);

  F2RunResult result;
  for (int64_t t = 0; t < n; ++t) {
    const auto& u = updates[static_cast<size_t>(t)];
    tracker.ProcessUpdate(psi.NextSite(t, u.sign), u);
    if ((t + 1) % 256 == 0 || t + 1 == n) {
      const double exact =
          static_cast<double>(exact_prefix[static_cast<size_t>(t)]);
      if (exact >= 100.0) {
        const double err = std::fabs(tracker.EstimateF2() - exact) / exact;
        result.max_checkpoint_rel_error =
            std::max(result.max_checkpoint_rel_error, err);
        if (t + 1 == n) result.final_rel_error = err;
      }
    }
  }
  result.messages = tracker.stats().total();
  return result;
}

void SweepN() {
  std::printf("\n-- F2 tracking: messages and accuracy vs n (k = 4) --\n");
  nmc::common::Table table({"n", "messages", "msgs/n", "final_rel_err",
                            "max_ckpt_rel_err"});
  std::vector<double> ns, costs;
  for (int64_t n : {4000, 16000, 64000}) {
    nmc::common::RunningStat messages;
    double final_err = 0.0, max_err = 0.0;
    for (uint64_t trial = 0; trial < 2; ++trial) {
      const auto r = RunF2(n, 4, 100 * trial + 7);
      messages.Add(static_cast<double>(r.messages));
      final_err = std::max(final_err, r.final_rel_error);
      max_err = std::max(max_err, r.max_checkpoint_rel_error);
    }
    table.AddRow({Format(n), Format(messages.mean(), 0),
                  Format(messages.mean() / static_cast<double>(n), 2),
                  Format(final_err, 3), Format(max_err, 3)});
    ns.push_back(static_cast<double>(n));
    costs.push_back(messages.mean());
  }
  table.Print();
  nmc::bench::PrintFit("messages", ns, costs);
  std::printf("theory: sublinear growth toward exponent 1/2; the accuracy\n"
              "combines per-cell tracking error (~2 eps) with the sketch's\n"
              "own median-of-rows error (~sqrt(2/cols))\n");
}

void SweepK() {
  std::printf("\n-- F2 tracking: messages vs k (n = 32000) --\n");
  nmc::common::Table table({"k", "messages", "max_ckpt_rel_err"});
  std::vector<double> ks, costs;
  for (int k : {1, 2, 4, 8}) {
    const auto r = RunF2(32000, k, 31);
    table.AddRow({Format(static_cast<int64_t>(k)), Format(r.messages),
                  Format(r.max_checkpoint_rel_error, 3)});
    ks.push_back(static_cast<double>(k));
    costs.push_back(static_cast<double>(r.messages));
  }
  table.Print();
  nmc::bench::PrintFit("messages vs k", ks, costs);
  std::printf("theory: growth ~sqrt(k) until the per-cell straight-stage\n"
              "floor dominates\n");
}

}  // namespace

int main(int argc, char** argv) {
  nmc::bench::InitBench(argc, argv, "bench_e9_f2");
  Banner("E9 — Corollary 5.1: F2 tracking with decrements (fast AMS + counters)",
         "Õ(sqrt(k n)/eps^2) messages; LB Omega(min{sqrt(k n)/eps, n})");
  SweepN();
  SweepK();
  return nmc::bench::FinishBench();
}
