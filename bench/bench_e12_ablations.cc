// E12 — ablations of the design choices DESIGN.md calls out:
//   * stage policy (cost-based auto vs the paper's literal boundary vs
//     SBC-only vs StraightSync-only),
//   * the conservative drift guard (Section 3.2's "type 1 waste"),
//   * the sampling law's log exponent beta (correctness margin vs cost),
//   * the Phase-2 handoff on drifting streams.
// Every row reports both cost and the violation outcome, because several
// knobs trade one for the other.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/table.h"
#include "core/horizon_free.h"
#include "streams/bernoulli.h"
#include "streams/permutation.h"

namespace {

using nmc::bench::Banner;
using nmc::bench::CounterFactory;
using nmc::bench::Repeat;
using nmc::common::Format;

constexpr int64_t kN = 1 << 18;
constexpr int kK = 4;
constexpr double kEps = 0.25;
constexpr int kTrials = 3;

std::function<std::vector<double>(int)> BalancedPermuted() {
  return [](int trial) {
    return nmc::streams::RandomlyPermuted(
        nmc::streams::SignMultiset(kN, 0.5),
        1300 + static_cast<uint64_t>(trial));
  };
}

std::function<std::vector<double>(int)> Drifting() {
  return [](int trial) {
    return nmc::streams::BernoulliStream(kN, 0.25,
                                         1400 + static_cast<uint64_t>(trial));
  };
}

nmc::core::CounterOptions Base() {
  nmc::core::CounterOptions options;
  options.epsilon = kEps;
  options.horizon_n = kN;
  options.seed = 47;
  return options;
}

void AddRow(nmc::common::Table* table, const std::string& name,
            const nmc::core::CounterOptions& options,
            const std::function<std::vector<double>(int)>& stream) {
  const auto summary = Repeat(kTrials, kK, kEps, stream,
                              CounterFactory(kK, options));
  table->AddRow({name, Format(summary.mean_messages, 0),
                 Format(summary.violation_fraction, 6),
                 Format(static_cast<int64_t>(summary.trials_with_violation)),
                 Format(summary.max_rel_error, 4)});
}

void StagePolicyAblation() {
  std::printf("\n-- stage policy (balanced permuted multiset, n = 2^18, "
              "k = 4) --\n");
  nmc::common::Table table({"policy", "messages", "viol_frac",
                            "viol_trials", "max_rel_err"});
  auto options = Base();
  AddRow(&table, "auto (cost-based)", options, BalancedPermuted());
  options.stage_policy = nmc::core::StagePolicy::kPaperBoundary;
  AddRow(&table, "paper (eps*S)^2>=k", options, BalancedPermuted());
  options.stage_policy = nmc::core::StagePolicy::kSbcOnly;
  AddRow(&table, "sbc_only", options, BalancedPermuted());
  options.stage_policy = nmc::core::StagePolicy::kStraightOnly;
  AddRow(&table, "straight_only", options, BalancedPermuted());
  table.Print();
  std::printf("takeaway: all four track correctly; the literal boundary\n"
              "leaves a band where SBC syncs at rate ~1 and pays 3k+1 per\n"
              "update, and sbc_only pays it everywhere near zero — the\n"
              "stage switch is what buys sqrt(k n) instead of k*n\n");
}

void BoundaryFactorAblation() {
  std::printf("\n-- stage boundary bias factor (same workload) --\n");
  nmc::common::Table table({"factor", "messages", "viol_frac",
                            "viol_trials", "max_rel_err"});
  for (double factor : {0.25, 1.0, 4.0}) {
    auto options = Base();
    options.stage_boundary_factor = factor;
    AddRow(&table, Format(factor, 2), options, BalancedPermuted());
  }
  table.Print();
  std::printf("takeaway: the cost comparison is flat around the optimum —\n"
              "the boundary constant is second-order, as the Õ analysis\n"
              "predicts\n");
}

void DriftGuardAblation() {
  std::printf("\n-- drift guard on/off --\n");
  nmc::common::Table table({"config", "messages", "viol_frac",
                            "viol_trials", "max_rel_err"});
  {
    auto options = Base();
    AddRow(&table, "guard on, driftless input", options, BalancedPermuted());
    options.enable_drift_guard = false;
    AddRow(&table, "guard off, driftless input", options, BalancedPermuted());
  }
  {
    auto options = Base();
    AddRow(&table, "guard on, mu=0.25 input", options, Drifting());
    options.enable_drift_guard = false;
    AddRow(&table, "guard off, mu=0.25 input", options, Drifting());
  }
  table.Print();
  std::printf("takeaway: the guard costs ~k log^2(n)/eps extra syncs (pure\n"
              "overhead on driftless input) but is what keeps drifting\n"
              "streams correct — exactly the Section 3.2 trade\n");
}

void BetaAblation() {
  std::printf("\n-- sampling-law exponent beta (rate ~ log^beta n/(eps s)^2) "
              "--\n");
  nmc::common::Table table({"beta", "messages", "viol_frac", "viol_trials",
                            "max_rel_err"});
  for (double beta : {0.0, 1.0, 2.0}) {
    auto options = Base();
    options.beta = beta;
    // Isolate the walk law: drop the guard so beta alone controls safety.
    options.enable_drift_guard = false;
    AddRow(&table, Format(beta, 1), options, BalancedPermuted());
  }
  table.Print();
  std::printf("takeaway: beta = 2 is the paper's structurally-needed margin\n"
              "(per-sync failure n^{-sqrt(2 alpha)}); smaller beta is\n"
              "cheaper but the violation columns show the guarantee erode\n");
}

void Phase2Ablation() {
  std::printf("\n-- Phase 2 on/off on a drifting stream (mu = 0.25) --\n");
  nmc::common::Table table({"config", "messages", "viol_frac", "viol_trials",
                            "max_rel_err"});
  {
    auto options = Base();
    options.drift_mode = nmc::core::DriftMode::kUnknownUnitDrift;
    AddRow(&table, "phase2 on (auto hyz variant)", options, Drifting());
    options.phase2_auto_hyz_mode = false;
    AddRow(&table, "phase2 on (sampled hyz only)", options, Drifting());
    options.enable_phase2 = false;
    AddRow(&table, "phase2 off (guard only)", options, Drifting());
  }
  table.Print();
  std::printf("takeaway: both correct (the guard alone already yields the\n"
              "sqrt(k)/(eps mu) Phase-1 cost). With the auto HYZ-variant\n"
              "pick (deterministic at k << log(1/delta)) the handoff is\n"
              "near break-even at this n; its advantage is a log factor\n"
              "that matters asymptotically, and it is what makes the\n"
              "mu-adaptive bound provable\n");
}

void VarianceAdaptiveAblation() {
  std::printf("\n-- variance-adaptive sampling on a tiny-value multiset "
              "(±0.05, permuted, k = 1) --\n");
  nmc::common::Table table({"config", "messages", "viol_frac", "viol_trials",
                            "max_rel_err"});
  auto tiny_stream = [](int trial) {
    std::vector<double> multiset(static_cast<size_t>(kN));
    for (int64_t i = 0; i < kN; ++i) {
      multiset[static_cast<size_t>(i)] = (i % 2 == 0) ? 0.05 : -0.05;
    }
    return nmc::streams::RandomlyPermuted(multiset,
                                          1500 + static_cast<uint64_t>(trial));
  };
  {
    auto options = Base();
    const auto summary =
        Repeat(kTrials, 1, kEps, tiny_stream, CounterFactory(1, options));
    table.AddRow({"plain eq. (1)", Format(summary.mean_messages, 0),
                  Format(summary.violation_fraction, 6),
                  Format(static_cast<int64_t>(summary.trials_with_violation)),
                  Format(summary.max_rel_error, 4)});
    options.variance_adaptive = true;
    const auto adaptive =
        Repeat(kTrials, 1, kEps, tiny_stream, CounterFactory(1, options));
    table.AddRow({"variance_adaptive", Format(adaptive.mean_messages, 0),
                  Format(adaptive.violation_fraction, 6),
                  Format(static_cast<int64_t>(adaptive.trials_with_violation)),
                  Format(adaptive.max_rel_error, 4)});
  }
  table.Print();
  std::printf("takeaway: eq. (1) is calibrated for ±1 steps; on ±0.05 steps\n"
              "it is pinned at rate 1 (Theta(n)). Scaling the law by the\n"
              "observed mean square restores sublinearity while keeping the\n"
              "guarantee — the library's value-scale extension\n");
}

void HorizonFreeAblation() {
  std::printf("\n-- horizon-free doubling wrapper vs known horizon --\n");
  nmc::common::Table table({"config", "messages", "viol_frac", "viol_trials",
                            "max_rel_err"});
  {
    const auto known = Repeat(kTrials, kK, kEps, BalancedPermuted(),
                              CounterFactory(kK, Base()));
    table.AddRow({"horizon known (n)", Format(known.mean_messages, 0),
                  Format(known.violation_fraction, 6),
                  Format(static_cast<int64_t>(known.trials_with_violation)),
                  Format(known.max_rel_error, 4)});
    const auto free = Repeat(
        kTrials, kK, kEps, BalancedPermuted(), [](int trial) {
          nmc::core::HorizonFreeOptions options;
          options.counter.epsilon = kEps;
          options.counter.seed = 1600 + static_cast<uint64_t>(trial);
          return std::make_unique<nmc::core::HorizonFreeCounter>(kK, options);
        });
    table.AddRow({"horizon-free", Format(free.mean_messages, 0),
                  Format(free.violation_fraction, 6),
                  Format(static_cast<int64_t>(free.trials_with_violation)),
                  Format(free.max_rel_error, 4)});
  }
  table.Print();
  std::printf("takeaway: the doubling trick discharges the known-n\n"
              "assumption at a small constant factor (log(horizon) shrinks\n"
              "in early epochs, which can even make it cheaper)\n");
}

}  // namespace

int main(int argc, char** argv) {
  nmc::bench::InitBench(argc, argv, "bench_e12_ablations");
  Banner("E12 — ablations of the algorithm's design choices",
         "stage switch, drift guard, log exponent, Phase-2 handoff");
  StagePolicyAblation();
  BoundaryFactorAblation();
  DriftGuardAblation();
  BetaAblation();
  Phase2Ablation();
  VarianceAdaptiveAblation();
  HorizonFreeAblation();
  return nmc::bench::FinishBench();
}
