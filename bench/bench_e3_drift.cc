// E3 — Theorem 3.3: unknown drift mu. The full algorithm (conservative
// Phase 1 + GPSearch + Phase-2 HYZ pair) costs
// Õ(min{ sqrt(k)/(eps|mu|), sqrt(k n)/eps, n }): flat in the
// |mu| = O(1/sqrt(n)) regime, then decreasing roughly as 1/|mu| until the
// Phase-1 overhead floor. The sweep also reports when GPSearch resolves
// (theory: Theta(log n / (mu eps)^2)) and the mu_hat it reports.

#include <cmath>
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "common/statistics.h"
#include "common/table.h"
#include "runtime/run.h"
#include "sim/assignment.h"
#include "streams/bernoulli.h"

namespace {

using nmc::bench::Banner;
using nmc::common::Format;

void SweepMu() {
  const int64_t n = 1 << 18;
  const double epsilon = 0.25;
  const int k = 4;
  const int trials = 3;
  std::printf("\n-- messages vs drift mu (n = 2^18, k = 4, eps = 0.25) --\n");
  nmc::common::Table table({"mu", "mu*sqrt(n)", "messages", "switch_t",
                            "mu_hat", "violations", "max_rel_err"});
  for (double mu : {0.0, 0.002, 0.004, 0.008, 0.016, 0.032, 0.064, 0.125,
                    0.25, 0.5, 1.0}) {
    nmc::common::RunningStat messages, switch_time, mu_hat;
    int violations = 0;
    double max_rel_error = 0.0;
    for (int trial = 0; trial < trials; ++trial) {
      const auto stream = nmc::streams::BernoulliStream(
          n, mu, 500 + static_cast<uint64_t>(trial));
      nmc::core::CounterOptions options;
      options.epsilon = epsilon;
      options.horizon_n = n;
      options.drift_mode = nmc::core::DriftMode::kUnknownUnitDrift;
      options.seed = 600 + static_cast<uint64_t>(trial);
      nmc::core::NonMonotonicCounter counter(k, options);
      nmc::sim::RoundRobinAssignment psi(k);
      nmc::runtime::RunConfig config;
      config.protocol = &counter;
      config.stream = &stream;
      config.psi = &psi;
      config.tracking.epsilon = epsilon;
      const auto result = nmc::runtime::RunWithTransport(
                              nmc::runtime::TransportKind::kSim, config)
                              .tracking;
      messages.Add(static_cast<double>(result.messages));
      const auto diag = counter.diagnostics();
      if (diag.phase2_active) {
        switch_time.Add(static_cast<double>(diag.phase2_switch_time));
        mu_hat.Add(diag.mu_hat);
      }
      if (result.any_violation()) ++violations;
      max_rel_error = std::max(max_rel_error, result.max_rel_error);
    }
    table.AddRow(
        {Format(mu, 3), Format(mu * std::sqrt(static_cast<double>(n)), 1),
         Format(messages.mean(), 0),
         switch_time.count() > 0 ? Format(switch_time.mean(), 0) : "-",
         mu_hat.count() > 0 ? Format(mu_hat.mean(), 3) : "-",
         Format(static_cast<int64_t>(violations)),
         Format(max_rel_error, 4)});
  }
  table.Print();
  std::printf(
      "theory: crossover at mu ~ 1/sqrt(n) (= %.4f): below it the cost sits\n"
      "at the driftless sqrt(k n)/eps level; above it Phase 2 engages at\n"
      "t ~ log n/(mu eps0)^2 and the cost decreases toward the Phase-1\n"
      "overhead floor (guard syncs ~ k log^2 n / eps + HYZ rounds)\n",
      1.0 / std::sqrt(static_cast<double>(n)));
}

void Phase2SwitchScaling() {
  std::printf("\n-- GPSearch resolution time vs mu (k = 4) --\n");
  const int64_t n = 1 << 19;
  const int k = 4;
  nmc::common::Table table({"mu", "switch_t", "log(n)/mu^2"});
  std::vector<double> inv_mu2, times;
  for (double mu : {0.125, 0.25, 0.5, 1.0}) {
    const auto stream = nmc::streams::BernoulliStream(n, mu, 7);
    nmc::core::CounterOptions options;
    options.epsilon = 0.25;
    options.horizon_n = n;
    options.drift_mode = nmc::core::DriftMode::kUnknownUnitDrift;
    options.seed = 8;
    nmc::core::NonMonotonicCounter counter(k, options);
    nmc::sim::RoundRobinAssignment psi(k);
    nmc::runtime::RunConfig config;
    config.protocol = &counter;
    config.stream = &stream;
    config.psi = &psi;
    config.tracking.epsilon = 0.25;
    (void)nmc::runtime::RunWithTransport(nmc::runtime::TransportKind::kSim,
                                         config);
    const auto diag = counter.diagnostics();
    const double theory =
        std::log(static_cast<double>(n)) / (mu * mu);
    table.AddRow({Format(mu, 3),
                  diag.phase2_active
                      ? Format(static_cast<int64_t>(diag.phase2_switch_time))
                      : "-",
                  Format(theory, 0)});
    if (diag.phase2_active) {
      inv_mu2.push_back(1.0 / (mu * mu));
      times.push_back(static_cast<double>(diag.phase2_switch_time));
    }
  }
  table.Print();
  if (inv_mu2.size() >= 2) {
    nmc::bench::PrintFit("switch time vs 1/mu^2", inv_mu2, times);
    std::printf("theory: exponent ~ 1 (resolution at Theta(log n/(mu eps0)^2),\n"
                "quantized by the geometric checkpoint grid)\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  nmc::bench::InitBench(argc, argv, "bench_e3_drift");
  Banner("E3 — Theorem 3.3: k-site counter with unknown drift",
         "messages = Õ(min{sqrt(k)/(eps|mu|), sqrt(k n)/eps, n}) + Õ(k)");
  SweepMu();
  Phase2SwitchScaling();
  return nmc::bench::FinishBench();
}
