// E7 — Lemma 4.4: the "tracking k inputs" game. k sites hold one uniform
// ±1 value each; a coordinator that samples z of them must declare the
// sign of the total whenever |total| >= c*sqrt(k). The lemma proves any
// protocol with z = o(k) errs with constant probability — this harness
// measures the optimal sampler's error rate across sampled fractions.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/table.h"
#include "core/lower_bound.h"

namespace {

using nmc::bench::Banner;
using nmc::common::Format;

void SweepSampledFraction() {
  std::printf("\n-- error rate of the optimal z-sample decision rule --\n");
  const int64_t trials = 40000;
  const double c = 1.0;
  nmc::common::Table table({"k", "z", "z/k", "decided_frac", "error_rate"});
  for (int64_t k : {64, 256, 1024}) {
    for (int64_t z : {static_cast<int64_t>(0), k / 32, k / 8, k / 2, k}) {
      const auto result = nmc::core::RunKInputsGame(
          k, z, c, trials, 9000 + static_cast<uint64_t>(k + z));
      table.AddRow(
          {Format(k), Format(z),
           Format(static_cast<double>(z) / static_cast<double>(k), 3),
           Format(static_cast<double>(result.decided_trials) /
                      static_cast<double>(result.trials), 3),
           Format(result.error_rate(), 4)});
    }
  }
  table.Print();
  std::printf(
      "theory: the error rate depends only on the fraction z/k (constant\n"
      "for any z = o(k), vanishing only as z -> Theta(k)); this is what\n"
      "forces Theta(k) messages per counted phase in Theorem 4.5\n");
}

void SweepThreshold() {
  std::printf("\n-- effect of the decision threshold c (k = 256, z = k/8) --\n");
  const int64_t k = 256;
  const int64_t trials = 40000;
  nmc::common::Table table({"c", "decided_frac", "error_rate"});
  for (double c : {0.5, 1.0, 2.0, 3.0}) {
    const auto result = nmc::core::RunKInputsGame(
        k, k / 8, c, trials, 9500 + static_cast<uint64_t>(c * 10));
    table.AddRow(
        {Format(c, 1),
         Format(static_cast<double>(result.decided_trials) /
                    static_cast<double>(result.trials), 3),
         Format(result.error_rate(), 4)});
  }
  table.Print();
  std::printf("theory: larger c makes decisions rarer and easier, but for\n"
              "any constant c the o(k)-sample error stays Omega(1)\n");
}

}  // namespace

int main(int argc, char** argv) {
  nmc::bench::InitBench(argc, argv, "bench_e7_k_inputs");
  Banner("E7 — Lemma 4.4: the tracking-k-inputs communication game",
         "deciding sign(total) when |total| >= c*sqrt(k) needs Theta(k) msgs");
  SweepSampledFraction();
  SweepThreshold();
  return nmc::bench::FinishBench();
}
