// E4 — Theorem 3.4: randomly permuted adversarial multisets. Whatever
// bounded values the adversary fixes, presenting them in random order
// admits tracking at O(sqrt(k n)/eps log n + log^3 n) messages. The sweep
// crosses adversary multisets with n, and contrasts the cost against the
// always-correct ExactSync baseline.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table.h"
#include "streams/permutation.h"

namespace {

using nmc::bench::Banner;
using nmc::bench::CounterFactory;
using nmc::bench::RegistryFactory;
using nmc::bench::Repeat;
using nmc::common::Format;

void SweepMultisets() {
  const double epsilon = 0.25;
  const int k = 4;
  const int trials = 3;
  for (const char* name : {"balanced", "biased", "oscillating", "skewed"}) {
    std::printf("\n-- adversary multiset: %s (k = 4, eps = 0.25) --\n", name);
    nmc::common::Table table({"n", "messages", "msgs/n", "violations",
                              "max_rel_err"});
    std::vector<double> ns, costs;
    for (int64_t n = 1 << 16; n <= (1 << 20); n <<= 2) {
      nmc::core::CounterOptions options;
      options.epsilon = epsilon;
      options.horizon_n = n;
      options.seed = 21;
      const auto summary = Repeat(
          trials, k, epsilon,
          [n, name](int trial) {
            return nmc::streams::RandomlyPermuted(
                nmc::streams::MakeAdversaryMultiset(name, n),
                700 + static_cast<uint64_t>(trial));
          },
          CounterFactory(k, options));
      table.AddRow({Format(n), Format(summary.mean_messages, 0),
                    Format(summary.mean_messages / static_cast<double>(n), 3),
                    Format(static_cast<int64_t>(summary.trials_with_violation)),
                    Format(summary.max_rel_error, 4)});
      ns.push_back(static_cast<double>(n));
      costs.push_back(summary.mean_messages);
    }
    table.Print();
    nmc::bench::PrintFit("messages", ns, costs);
  }
  std::printf("\ntheory: all multisets sublinear (exponent < 1, approaching\n"
              "1/2 for the balanced case; biased multisets ride the cheaper\n"
              "drift regime, capped below by the guard's ~log^3 n term)\n");
}

void VsExactSync() {
  std::printf("\n-- counter vs ExactSync on a balanced permuted multiset --\n");
  const double epsilon = 0.25;
  const int k = 1;
  nmc::common::Table table({"n", "counter_msgs", "exact_msgs", "ratio"});
  for (int64_t n = 1 << 16; n <= (1 << 20); n <<= 2) {
    nmc::core::CounterOptions options;
    options.epsilon = epsilon;
    options.horizon_n = n;
    options.seed = 23;
    const auto counter_summary = Repeat(
        2, k, epsilon,
        [n](int trial) {
          return nmc::streams::RandomlyPermuted(
              nmc::streams::SignMultiset(n, 0.5),
              800 + static_cast<uint64_t>(trial));
        },
        CounterFactory(k, options));
    const auto exact_summary = Repeat(
        1, k, epsilon,
        [n](int trial) {
          return nmc::streams::RandomlyPermuted(
              nmc::streams::SignMultiset(n, 0.5),
              800 + static_cast<uint64_t>(trial));
        },
        RegistryFactory("exact_sync", k));
    table.AddRow({Format(n), Format(counter_summary.mean_messages, 0),
                  Format(exact_summary.mean_messages, 0),
                  Format(exact_summary.mean_messages /
                             counter_summary.mean_messages, 2)});
  }
  table.Print();
  std::printf("theory: the savings ratio grows as sqrt(n)/polylog\n");
}

}  // namespace

int main(int argc, char** argv) {
  nmc::bench::InitBench(argc, argv, "bench_e4_permutation");
  Banner("E4 — Theorem 3.4: randomly permuted adversarial input",
         "messages = O(sqrt(k n)/eps log n + log^3 n) for ANY bounded multiset");
  SweepMultisets();
  VsExactSync();
  return nmc::bench::FinishBench();
}
