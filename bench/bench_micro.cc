// M1 — google-benchmark microbenchmarks of the hot paths: counter update,
// HYZ update, full simulator pump (network + tracking checker), stream
// generation (fGn via FFT), hashing, and sketch update. These bound the
// simulator's throughput (updates/second), which is what limits the n the
// experiment harnesses can sweep.
//
// Run with --benchmark_out=PATH --benchmark_out_format=json to feed
// scripts/run_benches.sh's BENCH_baseline.json aggregation.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "core/nonmonotonic_counter.h"
#include "hyz/hyz_counter.h"
#include "sim/assignment.h"
#include "sim/harness.h"
#include "sim/message.h"
#include "sim/network.h"
#include "sim/node.h"
#include "sketch/ams_sketch.h"
#include "sketch/hash.h"
#include "streams/bernoulli.h"
#include "streams/fbm.h"
#include "streams/fft.h"

namespace {

void BM_CounterUpdate(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int64_t n = 1 << 22;  // large horizon: stays in the cheap regime
  nmc::core::CounterOptions options;
  options.epsilon = 0.25;
  options.horizon_n = n;
  options.seed = 1;
  nmc::core::NonMonotonicCounter counter(k, options);
  nmc::sim::RoundRobinAssignment psi(k);
  const auto stream = nmc::streams::BernoulliStream(1 << 16, 0.0, 2);
  int64_t t = 0;
  for (auto _ : state) {
    const double v = stream[static_cast<size_t>(t % (1 << 16))];
    counter.ProcessUpdate(psi.NextSite(t, v), v);
    ++t;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterUpdate)->Arg(1)->Arg(4)->Arg(16);

void BM_HyzUpdate(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  nmc::hyz::HyzOptions options;
  options.epsilon = 0.1;
  options.delta = 1e-6;
  options.seed = 3;
  nmc::hyz::HyzProtocol counter(k, options);
  nmc::sim::RoundRobinAssignment psi(k);
  int64_t t = 0;
  for (auto _ : state) {
    counter.ProcessUpdate(psi.NextSite(t, 1.0), 1.0);
    ++t;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HyzUpdate)->Arg(4)->Arg(16);

// The whole simulator path the experiment harnesses pay per update:
// assignment, protocol update, network delivery, and the per-step
// epsilon check in RunTracking. This is the number the hot-path
// optimizations (flat type breakdown, reused delivery queue, cached
// observer flag, reserved curve) move.
void BM_TrackingPump(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int64_t n = 1 << 15;
  const auto stream = nmc::streams::BernoulliStream(n, 0.0, 21);
  int64_t updates = 0;
  for (auto _ : state) {
    nmc::core::CounterOptions options;
    options.epsilon = 0.25;
    options.horizon_n = n;
    options.seed = 11;
    nmc::core::NonMonotonicCounter counter(k, options);
    nmc::sim::RoundRobinAssignment psi(k);
    nmc::sim::TrackingOptions tracking;
    tracking.epsilon = 0.25;
    const auto result =
        nmc::sim::RunTracking(stream, &psi, &counter, tracking);
    benchmark::DoNotOptimize(result.messages);
    updates += result.n;
  }
  state.SetItemsProcessed(updates);
}
BENCHMARK(BM_TrackingPump)->Arg(1)->Arg(8);

// Raw network send+deliver cycle with a trivial echo protocol: isolates
// the per-message Network overhead (queue churn + accounting) from the
// counter logic above.
void BM_NetworkPump(benchmark::State& state) {
  class NullCoordinator : public nmc::sim::CoordinatorNode {
   public:
    void OnSiteMessage(int, const nmc::sim::Message&) override {}
  };
  class NullSite : public nmc::sim::SiteNode {
   public:
    void OnLocalUpdate(double) override {}
    void OnCoordinatorMessage(const nmc::sim::Message&) override {}
  };
  const int k = 8;
  nmc::sim::Network network(k);
  NullCoordinator coordinator;
  std::vector<NullSite> sites(k);
  network.AttachCoordinator(&coordinator);
  for (int s = 0; s < k; ++s) network.AttachSite(s, &sites[s]);
  nmc::sim::Message m;
  m.type = 3;
  int site = 0;
  for (auto _ : state) {
    network.SendToCoordinator(site, m);
    network.SendToSite(site, m);
    network.DeliverAll();
    site = (site + 1) % k;
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_NetworkPump);

void BM_RngU64(benchmark::State& state) {
  nmc::common::Rng rng(5);
  for (auto _ : state) benchmark::DoNotOptimize(rng.NextU64());
}
BENCHMARK(BM_RngU64);

void BM_Fft(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<std::complex<double>> data(n);
  nmc::common::Rng rng(7);
  for (auto& x : data) x = {rng.Gaussian(), rng.Gaussian()};
  for (auto _ : state) {
    auto copy = data;
    nmc::streams::Fft(&copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_Fft)->Arg(1 << 10)->Arg(1 << 14);

void BM_FgnDaviesHarte(benchmark::State& state) {
  const int64_t n = state.range(0);
  uint64_t seed = 9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nmc::streams::FgnDaviesHarte(n, 0.75, seed++));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FgnDaviesHarte)->Arg(1 << 12)->Arg(1 << 16);

void BM_KWiseHash(benchmark::State& state) {
  nmc::sketch::KWiseHash hash(4, 11);
  uint64_t x = 0;
  for (auto _ : state) benchmark::DoNotOptimize(hash.Hash(++x));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KWiseHash);

void BM_AmsUpdate(benchmark::State& state) {
  nmc::sketch::AmsSketch sketch(5, 256, 13);
  uint64_t item = 0;
  for (auto _ : state) {
    sketch.Update(++item % 4096, 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AmsUpdate);

}  // namespace

BENCHMARK_MAIN();
