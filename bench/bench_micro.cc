// M1 — google-benchmark microbenchmarks of the hot paths: counter update,
// HYZ update, full simulator pump (network + tracking checker), stream
// generation (fGn via FFT), hashing, and sketch update. These bound the
// simulator's throughput (updates/second), which is what limits the n the
// experiment harnesses can sweep.
//
// Accepts the shared bench flags --json_out=PATH (mapped to
// --benchmark_out=PATH --benchmark_out_format=json for
// scripts/run_benches.sh's BENCH_baseline.json aggregation), --batch=N
// (harness batch size for the pump benches) and --legacy_pump (per-update
// pump + per-coin samplers), alongside the native --benchmark_* flags.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_json.h"
#include "common/batch_rng.h"
#include "common/geometric_skip.h"
#include "common/rng.h"
#include "core/nonmonotonic_counter.h"
#include "hyz/hyz_counter.h"
#include "runtime/run.h"
#include "sim/assignment.h"
#include "sim/harness.h"
#include "sim/message.h"
#include "sim/network.h"
#include "sim/node.h"
#include "sketch/ams_sketch.h"
#include "sketch/hash.h"
#include "streams/bernoulli.h"
#include "streams/fbm.h"
#include "streams/fft.h"

namespace {

/// Pump configuration from --batch / --legacy_pump (see main below);
/// applied by the tracking-pump benches.
int g_batch = 0;               // 0 = harness default
bool g_legacy_pump = false;

nmc::sim::TrackingOptions PumpTracking(double epsilon) {
  nmc::sim::TrackingOptions tracking;
  tracking.epsilon = epsilon;
  if (g_legacy_pump) {
    tracking.batch_size = 1;
  } else if (g_batch > 0) {
    tracking.batch_size = g_batch;
  }
  return tracking;
}

/// All pump benches drive the sim backend through the unified transport
/// entry point — the same call path the benches and tools use.
nmc::sim::TrackingResult PumpRun(const std::vector<double>& stream,
                                 nmc::sim::Protocol* protocol,
                                 nmc::sim::AssignmentPolicy* psi,
                                 const nmc::sim::TrackingOptions& tracking) {
  nmc::runtime::RunConfig config;
  config.protocol = protocol;
  config.stream = &stream;
  config.psi = psi;
  config.tracking = tracking;
  return nmc::runtime::RunWithTransport(nmc::runtime::TransportKind::kSim,
                                        config)
      .tracking;
}

nmc::common::SamplerMode PumpSampler() {
  return g_legacy_pump ? nmc::common::SamplerMode::kLegacyCoins
                       : nmc::common::SamplerMode::kGeometricSkip;
}

/// Stream generation mode paired with the sampler mode: --legacy_pump
/// reproduces the historical scalar-Rng streams bit-for-bit; the default
/// uses the vectorized BatchRng generators.
nmc::streams::GenMode PumpGenMode() {
  return g_legacy_pump ? nmc::streams::GenMode::kLegacyScalar
                       : nmc::streams::GenMode::kBatch;
}

void BM_CounterUpdate(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int64_t n = 1 << 22;  // large horizon: stays in the cheap regime
  nmc::core::CounterOptions options;
  options.epsilon = 0.25;
  options.horizon_n = n;
  options.seed = 1;
  nmc::core::NonMonotonicCounter counter(k, options);
  nmc::sim::RoundRobinAssignment psi(k);
  const auto stream =
      nmc::streams::BernoulliStream(1 << 16, 0.0, 2, PumpGenMode());
  int64_t t = 0;
  for (auto _ : state) {
    const double v = stream[static_cast<size_t>(t % (1 << 16))];
    counter.ProcessUpdate(psi.NextSite(t, v), v);
    ++t;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterUpdate)->Arg(1)->Arg(4)->Arg(16);

void BM_HyzUpdate(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  nmc::hyz::HyzOptions options;
  options.epsilon = 0.1;
  options.delta = 1e-6;
  options.seed = 3;
  nmc::hyz::HyzProtocol counter(k, options);
  nmc::sim::RoundRobinAssignment psi(k);
  int64_t t = 0;
  for (auto _ : state) {
    counter.ProcessUpdate(psi.NextSite(t, 1.0), 1.0);
    ++t;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HyzUpdate)->Arg(4)->Arg(16);

// The whole simulator path the experiment harnesses pay per update:
// assignment, protocol update, network delivery, and the per-step
// epsilon check in RunTracking. This is the number the hot-path
// optimizations (flat type breakdown, reused delivery queue, cached
// observer flag, reserved curve) move.
void BM_TrackingPump(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int64_t n = 1 << 15;
  const auto stream = nmc::streams::BernoulliStream(n, 0.0, 21, PumpGenMode());
  int64_t updates = 0;
  for (auto _ : state) {
    nmc::core::CounterOptions options;
    options.epsilon = 0.25;
    options.horizon_n = n;
    options.seed = 11;
    options.sampler = PumpSampler();
    nmc::core::NonMonotonicCounter counter(k, options);
    nmc::sim::RoundRobinAssignment psi(k);
    const auto result = PumpRun(stream, &counter, &psi, PumpTracking(0.25));
    benchmark::DoNotOptimize(result.messages);
    updates += result.n;
  }
  state.SetItemsProcessed(updates);
}
BENCHMARK(BM_TrackingPump)->Arg(1)->Arg(8);

// The long-gap regime the fast-forward path targets: a drifted stream
// keeps |s| large, so the eq. (1) rate is tiny and inter-report gaps are
// long — the geometric skip consumes them in O(1) per run instead of one
// coin per update. (The zero-drift BM_TrackingPump above spends most of
// its life at rate ~1, where every update reports and no pump can skip.)
void BM_TrackingPumpLongGap(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int64_t n = 1 << 15;
  const auto stream = nmc::streams::BernoulliStream(n, 0.75, 21, PumpGenMode());
  int64_t updates = 0;
  for (auto _ : state) {
    nmc::core::CounterOptions options;
    options.epsilon = 0.25;
    options.horizon_n = n;
    options.seed = 11;
    options.sampler = PumpSampler();
    nmc::core::NonMonotonicCounter counter(k, options);
    nmc::sim::RoundRobinAssignment psi(k);
    const auto result = PumpRun(stream, &counter, &psi, PumpTracking(0.25));
    benchmark::DoNotOptimize(result.messages);
    updates += result.n;
  }
  state.SetItemsProcessed(updates);
}
BENCHMARK(BM_TrackingPumpLongGap)->Arg(1)->Arg(8);

// Harness batch-size sweep over the long-gap config (skip sampler unless
// --legacy_pump): quantifies how much of the fast-forward win needs the
// batched pump on top of the skip sampler (batch = 1 still pays one
// virtual call + invariant check per update).
void BM_BatchedPump(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  const int64_t n = 1 << 15;
  const auto stream = nmc::streams::BernoulliStream(n, 0.75, 21, PumpGenMode());
  int64_t updates = 0;
  for (auto _ : state) {
    nmc::core::CounterOptions options;
    options.epsilon = 0.25;
    options.horizon_n = n;
    options.seed = 11;
    options.sampler = PumpSampler();
    nmc::core::NonMonotonicCounter counter(1, options);
    nmc::sim::RoundRobinAssignment psi(1);
    nmc::sim::TrackingOptions tracking;
    tracking.epsilon = 0.25;
    tracking.batch_size = batch;
    const auto result = PumpRun(stream, &counter, &psi, tracking);
    benchmark::DoNotOptimize(result.messages);
    updates += result.n;
  }
  state.SetItemsProcessed(updates);
}
BENCHMARK(BM_BatchedPump)->Arg(1)->Arg(32)->Arg(256)->Arg(2048);

// Raw sampler cost per inter-report run at rate p = 1/range(0):
// range(1) = 0 uses the geometric-skip draw (one uniform + one log per
// run), 1 replays per-update coins (gap+1 Bernoulli draws). items/s
// counts stream updates consumed, so the ratio is the per-update
// fast-forward factor with everything else stripped away.
void BM_SkipSampler(benchmark::State& state) {
  const double p = 1.0 / static_cast<double>(state.range(0));
  const bool legacy = state.range(1) != 0;
  nmc::common::GeometricSkip skip(legacy
                                    ? nmc::common::SamplerMode::kLegacyCoins
                                    : nmc::common::SamplerMode::kGeometricSkip);
  // nmc-lint: allow(NO_UNSEEDED_RNG) fixed microbench anchor seed; the bench harness owns iterations, there is no trial seed to thread
  nmc::common::Rng rng(17);
  // The skip path draws its gaps from the vectorized bulk feed, as the
  // counter sites do; the legacy path stays on per-coin scalar draws.
  nmc::common::BatchRng batch(rng.NextU64());
  if (!legacy) skip.AttachBatchRng(&batch);
  int64_t items = 0;
  for (auto _ : state) {
    if (legacy) {
      ++items;
      while (!skip.Step(&rng, p)) ++items;
    } else {
      items += skip.TakeRun(&rng, p) + 1;
    }
  }
  state.SetItemsProcessed(items);
}
BENCHMARK(BM_SkipSampler)
    ->ArgNames({"inv_p", "legacy"})
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({1024, 0})
    ->Args({1024, 1});

// Bulk RNG throughput on the active SIMD dispatch target: uniforms and
// geometric gaps per second. The gap fill is the skip sampler's feed; the
// uniform fill is the stream generators'.
void BM_BatchRngFill(benchmark::State& state) {
  const bool gaps = state.range(0) != 0;
  nmc::common::BatchRng rng(17);
  std::vector<double> uniforms(4096);
  std::vector<int64_t> gap_out(4096);
  int64_t items = 0;
  for (auto _ : state) {
    if (gaps) {
      rng.FillGeometricGaps(std::span<int64_t>(gap_out), 1.0 / 16.0);
      benchmark::DoNotOptimize(gap_out.data());
    } else {
      rng.FillUniform(std::span<double>(uniforms));
      benchmark::DoNotOptimize(uniforms.data());
    }
    items += 4096;
  }
  state.SetItemsProcessed(items);
}
BENCHMARK(BM_BatchRngFill)->ArgNames({"gaps"})->Arg(0)->Arg(1);

// Raw network send+deliver cycle with a trivial echo protocol: isolates
// the per-message Network overhead (queue churn + accounting) from the
// counter logic above.
void BM_NetworkPump(benchmark::State& state) {
  class NullCoordinator : public nmc::sim::CoordinatorNode {
   public:
    void OnSiteMessage(int, const nmc::sim::Message&) override {}
  };
  class NullSite : public nmc::sim::SiteNode {
   public:
    void OnLocalUpdate(double) override {}
    void OnCoordinatorMessage(const nmc::sim::Message&) override {}
  };
  const int k = 8;
  nmc::sim::Network network(k);
  NullCoordinator coordinator;
  std::vector<NullSite> sites(k);
  network.AttachCoordinator(&coordinator);
  for (int s = 0; s < k; ++s) network.AttachSite(s, &sites[s]);
  nmc::sim::Message m;
  m.type = 3;
  int site = 0;
  for (auto _ : state) {
    network.SendToCoordinator(site, m);
    network.SendToSite(site, m);
    network.DeliverAll();
    site = (site + 1) % k;
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_NetworkPump);

void BM_RngU64(benchmark::State& state) {
  // nmc-lint: allow(NO_UNSEEDED_RNG) fixed seed; measures throughput only.
  nmc::common::Rng rng(5);
  for (auto _ : state) benchmark::DoNotOptimize(rng.NextU64());
}
BENCHMARK(BM_RngU64);

void BM_Fft(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<std::complex<double>> data(n);
  // nmc-lint: allow(NO_UNSEEDED_RNG) fixed seed keeps the FFT input stable across runs so timings are comparable
  nmc::common::Rng rng(7);
  for (auto& x : data) x = {rng.Gaussian(), rng.Gaussian()};
  for (auto _ : state) {
    auto copy = data;
    nmc::streams::Fft(&copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_Fft)->Arg(1 << 10)->Arg(1 << 14);

void BM_FgnDaviesHarte(benchmark::State& state) {
  const int64_t n = state.range(0);
  uint64_t seed = 9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nmc::streams::FgnDaviesHarte(n, 0.75, seed++));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FgnDaviesHarte)->Arg(1 << 12)->Arg(1 << 16);

void BM_KWiseHash(benchmark::State& state) {
  nmc::sketch::KWiseHash hash(4, 11);
  uint64_t x = 0;
  for (auto _ : state) benchmark::DoNotOptimize(hash.Hash(++x));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KWiseHash);

void BM_AmsUpdate(benchmark::State& state) {
  nmc::sketch::AmsSketch sketch(5, 256, 13);
  uint64_t item = 0;
  for (auto _ : state) {
    sketch.Update(++item % 4096, 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AmsUpdate);

}  // namespace

/// Custom main instead of BENCHMARK_MAIN: peels off the repo's shared
/// bench flags (declared once in bench_json.cc's flag table) before
/// handing the rest to google-benchmark, so run_benches.sh and the CI
/// bench-smoke job can drive every bench binary with one flag vocabulary.
/// Unknown flags exit 2, matching the InitBench-based binaries (and the
/// rejects-unknown-flag smoke test).
int main(int argc, char** argv) {
  nmc::bench::BenchFlagValues values;
  std::vector<std::string> rest;
  nmc::bench::PeelBenchFlags(argc, argv, "bench_micro", &values, &rest);
  if (values.batch > 0) g_batch = values.batch;
  g_legacy_pump = values.legacy_pump;

  std::vector<std::string> args;
  args.reserve(rest.size() + 3);
  args.push_back(argv[0]);
  if (!values.json_out.empty()) {
    args.push_back("--benchmark_out=" + values.json_out);
    args.push_back("--benchmark_out_format=json");
  }
  for (std::string& token : rest) args.push_back(std::move(token));
  std::vector<char*> argv_out;
  argv_out.reserve(args.size());
  for (std::string& s : args) argv_out.push_back(s.data());
  int argc_out = static_cast<int>(argv_out.size());
  benchmark::Initialize(&argc_out, argv_out.data());
  if (benchmark::ReportUnrecognizedArguments(argc_out, argv_out.data())) {
    return 2;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
