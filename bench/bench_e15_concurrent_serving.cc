// E15 — concurrent serving: the threaded transport backend vs the
// deterministic simulator pump. The protocol is the same single-threaded
// state machine either way; this bench measures what the runtime around it
// costs and buys: update throughput through the SPSC mailboxes vs a bare
// in-thread ProcessBatch pump, and query throughput of m reader threads
// snapshotting the seqlock-published estimate wait-free.
//
// Flags (on top of the shared set): --sites=K, --readers=M (pins the
// reader sweep to one point), --updates=N, --protocol=NAME. With
// --transport=sim only the pump reference runs; --transport=threads runs
// the in-process backend (the CI TSan smoke runs `--transport=threads
// --sites=2 --readers=2`) and --transport=sockets runs the same sweep
// with the sites as forked processes streaming wire frames over Unix
// sockets (the CI multi-process smoke). Both concurrent backends end in
// the linearizability epilogue against the sim oracle.
//
// Every reported number is also recorded via RecordMetric, so the BENCH
// json carries bench/bench_e15_concurrent_serving/<metric> rows for
// scripts/compare_bench.py.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "registry/builtin.h"
#include "runtime/run.h"
#include "sim/registry.h"
#include "streams/bernoulli.h"

namespace {

using nmc::bench::BenchTransport;
using nmc::bench::RecordMetric;
using nmc::runtime::TransportKind;

struct E15Options {
  int sites = 4;
  int readers = 0;  // 0 = sweep {1, 2, 4, 8}
  int64_t updates = 1 << 16;
  std::string protocol = "counter";
};

constexpr double kEpsilon = 0.25;
constexpr uint64_t kStreamSeed = 1500;
constexpr uint64_t kCounterSeed = 23;

[[noreturn]] void UsageError(const std::string& message) {
  std::fprintf(stderr,
               "bench_e15_concurrent_serving: %s\n"
               "own flags: --sites=K, --readers=M, --updates=N, "
               "--protocol=NAME; plus the shared set (%s)\n",
               message.c_str(), nmc::bench::BenchFlagHelp().c_str());
  std::exit(2);
}

E15Options ParseOwnFlags(const std::vector<std::string>& rest) {
  E15Options options;
  for (const std::string& token : rest) {
    const size_t eq = token.find('=');
    const std::string key = token.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : token.substr(eq + 1);
    if (key == "--sites") {
      options.sites = std::atoi(value.c_str());
      if (options.sites < 1) UsageError("--sites must be >= 1");
    } else if (key == "--readers") {
      options.readers = std::atoi(value.c_str());
      if (options.readers < 1) UsageError("--readers must be >= 1");
    } else if (key == "--updates") {
      options.updates = std::atoll(value.c_str());
      if (options.updates < 1) UsageError("--updates must be >= 1");
    } else if (key == "--protocol") {
      if (value.empty()) UsageError("--protocol needs a name");
      options.protocol = value;
    } else {
      UsageError("unknown flag " + token);
    }
  }
  return options;
}

nmc::sim::ProtocolParams Params(const E15Options& options) {
  nmc::sim::ProtocolParams params;
  params.epsilon = kEpsilon;
  params.horizon_n = options.updates;
  params.seed = kCounterSeed;
  return params;
}

std::unique_ptr<nmc::sim::Protocol> FreshProtocol(const E15Options& options,
                                                  TransportKind kind) {
  return nmc::runtime::CreateForTransport(kind, options.protocol,
                                          options.sites, Params(options));
}

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// The single-threaded reference: the same shards, consumed on one thread
/// in the same visiting pattern as the threaded coordinator (round-robin
/// over sites, up to 256 contiguous updates per visit, ProcessBatch), with
/// no queues, threads, or publishes in the way. This is the pump the
/// threaded backend's update throughput is judged against.
double SimPumpUpdatesPerSec(const E15Options& options,
                            const std::vector<std::vector<double>>& shards) {
  const std::unique_ptr<nmc::sim::Protocol> protocol =
      FreshProtocol(options, TransportKind::kSim);
  constexpr size_t kVisit = 256;
  std::vector<size_t> pos(shards.size(), 0);
  int64_t total = 0;
  const auto start = std::chrono::steady_clock::now();
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (size_t s = 0; s < shards.size(); ++s) {
      const std::vector<double>& shard = shards[s];
      if (pos[s] >= shard.size()) continue;
      progressed = true;
      const size_t want = std::min(kVisit, shard.size() - pos[s]);
      const std::span<const double> batch(&shard[pos[s]], want);
      size_t offset = 0;
      while (offset < batch.size()) {
        offset += static_cast<size_t>(protocol->ProcessBatch(
            static_cast<int>(s), batch.subspan(offset)));
        total += 1;  // count ProcessBatch calls only for the loop's shape
      }
      pos[s] += want;
    }
  }
  const double elapsed = Seconds(start);
  int64_t updates = 0;
  for (const std::vector<double>& shard : shards) {
    updates += static_cast<int64_t>(shard.size());
  }
  return elapsed > 0.0 ? static_cast<double>(updates) / elapsed : 0.0;
}

struct ServingPoint {
  int readers = 0;
  double updates_per_sec = 0.0;
  double reads_per_sec = 0.0;
  int64_t torn_reads = 0;
};

/// One reader-count point on a concurrent backend (threads or sockets),
/// through the unified transport entry point.
ServingPoint RunServingPoint(const E15Options& options,
                             const std::vector<std::vector<double>>& shards,
                             int readers, TransportKind kind) {
  const std::unique_ptr<nmc::sim::Protocol> protocol =
      FreshProtocol(options, kind);
  nmc::runtime::RunConfig config;
  config.protocol = protocol.get();
  config.shards = shards;
  config.threaded.num_readers = readers;
  config.sockets.num_readers = readers;
  config.sockets.epsilon = kEpsilon;
  const auto start = std::chrono::steady_clock::now();
  const nmc::runtime::RunResult result =
      nmc::runtime::RunWithTransport(kind, config);
  const double elapsed = Seconds(start);
  ServingPoint point;
  point.readers = readers;
  if (elapsed > 0.0) {
    point.updates_per_sec =
        static_cast<double>(result.serving.updates) / elapsed;
    point.reads_per_sec =
        static_cast<double>(result.serving.total_reads) / elapsed;
  }
  point.torn_reads = result.serving.torn_reads;
  return point;
}

/// A small captured run replayed against the deterministic simulator: every
/// published estimate and every reader snapshot must be bit-identical to
/// the oracle's trajectory at its generation. Aborts the bench (exit 1) on
/// a violation — a concurrency bug, not a perf result.
bool VerifyLinearizable(const E15Options& options, TransportKind kind) {
  E15Options small = options;
  small.updates = std::min<int64_t>(options.updates, 1 << 14);
  const std::vector<double> stream = nmc::streams::BernoulliStream(
      small.updates, 0.0, kStreamSeed);
  const std::vector<std::vector<double>> shards =
      nmc::runtime::ShardRoundRobin(stream, small.sites);

  const std::unique_ptr<nmc::sim::Protocol> protocol =
      FreshProtocol(small, kind);
  nmc::runtime::RunConfig config;
  config.protocol = protocol.get();
  config.shards = shards;
  config.threaded.num_readers = 2;
  config.threaded.capture = true;
  config.sockets.num_readers = 2;
  config.sockets.capture = true;
  config.sockets.epsilon = kEpsilon;
  const nmc::runtime::RunResult result =
      nmc::runtime::RunWithTransport(kind, config);

  const std::unique_ptr<nmc::sim::Protocol> oracle =
      FreshProtocol(small, TransportKind::kSim);
  const nmc::runtime::LinearizabilityReport report =
      nmc::runtime::CheckLinearizable(result, oracle.get());
  if (!report.linearizable) {
    std::fprintf(stderr, "LINEARIZABILITY VIOLATION: %s\n",
                 report.failure.c_str());
    return false;
  }
  std::printf("linearizability: %lld publishes + %lld reader snapshots "
              "replay bit-identically against the sim oracle\n",
              static_cast<long long>(report.publishes_checked),
              static_cast<long long>(report.samples_checked));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> rest;
  nmc::bench::InitBenchRest(argc, argv, "bench_e15_concurrent_serving", &rest);
  const E15Options options = ParseOwnFlags(rest);
  nmc::registry::RegisterBuiltinProtocols();
  if (!nmc::runtime::TransportSupports(TransportKind::kSim,
                                       options.protocol)) {
    UsageError("unknown protocol '" + options.protocol + "'");
  }

  nmc::bench::Banner(
      "E15 — concurrent serving: threaded transport vs simulator pump",
      "same protocol state machine; the runtime adds wait-free reads");
  std::printf("sites=%d updates=%lld protocol=%s transport=%s\n",
              options.sites, static_cast<long long>(options.updates),
              options.protocol.c_str(),
              nmc::runtime::TransportKindName(BenchTransport()));

  const std::vector<double> stream = nmc::streams::BernoulliStream(
      options.updates, 0.0, kStreamSeed);
  const std::vector<std::vector<double>> shards =
      nmc::runtime::ShardRoundRobin(stream, options.sites);

  const double sim_ups = SimPumpUpdatesPerSec(options, shards);
  std::printf("\nsim pump (single thread, no queues): %.3e updates/sec\n",
              sim_ups);
  RecordMetric("sim_pump_updates_per_sec", sim_ups);

  const TransportKind kind = BenchTransport();
  if (kind == TransportKind::kSim) {
    std::printf("(--transport=sim: skipping the concurrent sweep)\n");
    return nmc::bench::FinishBench();
  }
  if (!nmc::runtime::TransportSupports(kind, options.protocol)) {
    UsageError("protocol '" + options.protocol +
               "' is quarantined to --transport=sim (thread_safe trait)");
  }
  const char* kind_name = nmc::runtime::TransportKindName(kind);

  std::vector<int> sweep;
  if (options.readers > 0) {
    sweep.push_back(options.readers);
  } else {
    sweep = {1, 2, 4, 8};
  }
  std::printf("\n-- %s backend: %d sites, m reader threads --\n", kind_name,
              options.sites);
  std::printf("%8s  %16s  %16s  %12s\n", "readers", "updates/sec",
              "reads/sec", "torn reads");
  std::vector<ServingPoint> points;
  for (const int m : sweep) {
    points.push_back(RunServingPoint(options, shards, m, kind));
    const ServingPoint& p = points.back();
    std::printf("%8d  %16.3e  %16.3e  %12lld\n", p.readers, p.updates_per_sec,
                p.reads_per_sec, static_cast<long long>(p.torn_reads));
    char name[64];
    std::snprintf(name, sizeof(name), "%s_updates_per_sec_m%d", kind_name,
                  p.readers);
    RecordMetric(name, p.updates_per_sec);
    std::snprintf(name, sizeof(name), "reads_per_sec_m%d", p.readers);
    RecordMetric(name, p.reads_per_sec);
  }

  const ServingPoint& first = points.front();
  if (sim_ups > 0.0) {
    char name[64];
    std::snprintf(name, sizeof(name), "%s_vs_sim_pump", kind_name);
    RecordMetric(name, first.updates_per_sec / sim_ups);
    std::printf("\n%s/sim update throughput: %.2fx (transport overhead; >1x "
                "needs real cores for the sites)\n",
                kind_name, first.updates_per_sec / sim_ups);
  }
  if (points.size() > 1 && first.reads_per_sec > 0.0) {
    const double scaling = points.back().reads_per_sec / first.reads_per_sec;
    RecordMetric("reader_scaling", scaling);
    std::printf("reader scaling m=%d vs m=%d: %.2fx (wait-free reads; "
                "scaling needs >= m cores)\n",
                points.back().readers, first.readers, scaling);
  }

  std::printf("\n-- linearizability (captured %s run vs sim oracle) --\n",
              kind_name);
  if (!VerifyLinearizable(options, kind)) return 1;
  return nmc::bench::FinishBench();
}
