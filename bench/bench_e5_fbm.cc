// E5 — Theorem 3.5 / Corollary 3.6: fractional Brownian motion input with
// Hurst parameter H in [1/2, 1). With the eq. (2) sampling law at
// delta = 1/H, the single-site cost is O(n^{1-H}/eps * polylog) and the
// k-site cost Õ(n^{1-H} k^{(3-delta)/2}/eps). The sweep fits the measured
// growth exponent in n for each H and the growth in k at fixed H.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table.h"
#include "streams/fbm.h"

namespace {

using nmc::bench::Banner;
using nmc::bench::CounterFactory;
using nmc::bench::Repeat;
using nmc::common::Format;

void SweepHurstAndN() {
  std::printf("\n-- messages vs n for each Hurst H (k = 1, eps = 0.1) --\n");
  const double epsilon = 0.1;
  const int trials = 4;
  nmc::common::Table table({"H", "delta", "fit_exponent", "theory_1-H", "r2",
                            "violations"});
  for (double hurst : {0.5, 0.6, 0.7, 0.8, 0.9}) {
    std::vector<double> ns, costs;
    int violations = 0;
    for (int64_t n = 1 << 12; n <= (1 << 17); n <<= 1) {
      nmc::core::CounterOptions options;
      options.epsilon = epsilon;
      options.horizon_n = n;
      options.fbm_delta = 1.0 / hurst;
      options.seed = 25;
      const auto summary = Repeat(
          trials, 1, epsilon,
          [n, hurst](int trial) {
            return nmc::streams::FgnDaviesHarte(
                n, hurst, 900 + static_cast<uint64_t>(trial));
          },
          CounterFactory(1, options));
      ns.push_back(static_cast<double>(n));
      costs.push_back(summary.mean_messages);
      violations += summary.trials_with_violation;
    }
    const auto fit = nmc::common::FitPowerLaw(ns, costs);
    table.AddRow({Format(hurst, 2), Format(1.0 / hurst, 2),
                  Format(fit.slope, 3), Format(1.0 - hurst, 2),
                  Format(fit.r2, 3),
                  Format(static_cast<int64_t>(violations))});
  }
  table.Print();
  std::printf("theory: the measured exponent tracks 1-H (larger H = more\n"
              "variance = less time near zero = cheaper); finite-n polylog\n"
              "factors bias the small exponents upward\n");
}

void SweepKAtFixedHurst() {
  std::printf("\n-- messages vs k (H = 0.75, n = 2^16, eps = 0.2) --\n");
  const double hurst = 0.75;
  const double epsilon = 0.2;
  const int64_t n = 1 << 16;
  const int trials = 3;
  nmc::common::Table table({"k", "messages", "violations", "max_rel_err"});
  std::vector<double> ks, costs;
  for (int k : {1, 2, 4, 8}) {
    nmc::core::CounterOptions options;
    options.epsilon = epsilon;
    options.horizon_n = n;
    options.fbm_delta = 1.0 / hurst;
    options.seed = 27;
    const auto summary = Repeat(
        trials, k, epsilon,
        [n, hurst](int trial) {
          return nmc::streams::FgnDaviesHarte(
              n, hurst, 950 + static_cast<uint64_t>(trial));
        },
        CounterFactory(k, options));
    table.AddRow({Format(static_cast<int64_t>(k)),
                  Format(summary.mean_messages, 0),
                  Format(static_cast<int64_t>(summary.trials_with_violation)),
                  Format(summary.max_rel_error, 4)});
    ks.push_back(static_cast<double>(k));
    costs.push_back(summary.mean_messages);
  }
  table.Print();
  nmc::bench::PrintFit("messages vs k", ks, costs);
  std::printf("theory: Cor 3.6 exponent (3-delta)/2 = %.2f at delta = 1/H\n",
              (3.0 - 1.0 / hurst) / 2.0);
}

}  // namespace

int main(int argc, char** argv) {
  nmc::bench::InitBench(argc, argv, "bench_e5_fbm");
  Banner("E5 — Theorem 3.5 / Corollary 3.6: fractional Brownian motion",
         "messages = Õ(n^{1-H} k^{(3-delta)/2}/eps) for H <= 1/delta");
  SweepHurstAndN();
  SweepKAtFixedHurst();
  return nmc::bench::FinishBench();
}
