// E2 — Theorem 3.2: k-site counting of a zero-drift i.i.d. stream costs
// O(sqrt(k*n)/eps * log n). The sweep over k checks the sqrt(k) growth
// (driven by the SBC/StraightSync boundary sitting at |S| ~ sqrt(k)/eps),
// and a second table shows the cost is insensitive to the adversary's
// partition psi.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table.h"
#include "streams/bernoulli.h"

namespace {

using nmc::bench::Banner;
using nmc::bench::CounterFactory;
using nmc::bench::Repeat;
using nmc::common::Format;

void SweepK() {
  std::printf("\n-- messages vs k (n = 2^18, eps = 0.25) --\n");
  const int64_t n = 1 << 18;
  const double epsilon = 0.25;
  const int trials = 3;
  nmc::common::Table table({"k", "messages", "msgs/sqrt(k)", "violations",
                            "max_rel_err"});
  std::vector<double> ks, costs;
  for (int k : {1, 2, 4, 8, 16, 32}) {
    nmc::core::CounterOptions options;
    options.epsilon = epsilon;
    options.horizon_n = n;
    options.seed = 17;
    const auto summary = Repeat(
        trials, k, epsilon,
        [n](int trial) {
          return nmc::streams::BernoulliStream(
              n, 0.0, 300 + static_cast<uint64_t>(trial));
        },
        CounterFactory(k, options));
    table.AddRow({Format(static_cast<int64_t>(k)),
                  Format(summary.mean_messages, 0),
                  Format(summary.mean_messages / std::sqrt(static_cast<double>(k)), 0),
                  Format(static_cast<int64_t>(summary.trials_with_violation)),
                  Format(summary.max_rel_error, 4)});
    ks.push_back(static_cast<double>(k));
    costs.push_back(summary.mean_messages);
  }
  table.Print();
  nmc::bench::PrintFit("messages vs k", ks, costs);
  std::printf("theory: exponent -> 0.5; for large k the cost saturates at\n"
              "the StraightSync floor 2n = %lld (the sqrt(k)/eps boundary\n"
              "exceeds the walk's range at this n)\n",
              static_cast<long long>(2 * n));
}

void SweepPsi() {
  std::printf("\n-- messages vs adversary partition psi (k = 8) --\n");
  const int64_t n = 1 << 17;
  const double epsilon = 0.25;
  const int k = 8;
  const int trials = 3;
  nmc::common::Table table({"psi", "messages", "violations", "max_rel_err"});
  for (const char* psi : {"round_robin", "random", "single", "block",
                          "sign_split"}) {
    nmc::core::CounterOptions options;
    options.epsilon = epsilon;
    options.horizon_n = n;
    options.seed = 19;
    const auto summary = Repeat(
        trials, k, epsilon,
        [n](int trial) {
          return nmc::streams::BernoulliStream(
              n, 0.0, 400 + static_cast<uint64_t>(trial));
        },
        CounterFactory(k, options), psi);
    table.AddRow({psi, Format(summary.mean_messages, 0),
                  Format(static_cast<int64_t>(summary.trials_with_violation)),
                  Format(summary.max_rel_error, 4)});
  }
  table.Print();
  std::printf("theory: the bound is independent of psi (adversarial\n"
              "partitioning only reroutes, never changes, the sync pattern)\n");
}

}  // namespace

int main(int argc, char** argv) {
  nmc::bench::InitBench(argc, argv, "bench_e2_multisite");
  Banner("E2 — Theorem 3.2: k-site counter, i.i.d. input, zero drift",
         "messages = O(sqrt(k*n)/eps * log n), independent of psi");
  SweepK();
  SweepPsi();
  return nmc::bench::FinishBench();
}
