#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/runner.h"
#include "common/statistics.h"
#include "core/nonmonotonic_counter.h"
#include "hyz/hyz_counter.h"
#include "sim/assignment.h"
#include "sim/harness.h"

namespace nmc::bench {

/// Runs `trials` independent tracked runs; `make_stream` and
/// `make_protocol` receive the trial index so each trial can reseed.
///
/// Trials fan out across the session's worker pool (see InitBench /
/// --threads; 1 = serial). Aggregates are bit-identical regardless of the
/// thread count, and each batch is recorded into the session's JSON report
/// when --json_out is set.
inline RunSummary Repeat(
    int trials, int num_sites, double epsilon,
    const std::function<std::vector<double>(int)>& make_stream,
    const std::function<std::unique_ptr<sim::Protocol>(int)>& make_protocol,
    const std::string& psi_name = "round_robin") {
  RepeatSpec spec;
  spec.trials = trials;
  spec.num_sites = num_sites;
  spec.epsilon = epsilon;
  spec.psi_name = psi_name;
  spec.batch_size = BenchBatch();
  spec.legacy_pump = BenchLegacyPump();
  spec.make_stream = make_stream;
  spec.make_protocol = make_protocol;
  const RunSummary summary = RunRepeated(spec, BenchThreads());

  RunRecord record;
  record.label = NextRunLabel();
  record.trials = trials;
  record.num_sites = num_sites;
  record.epsilon = epsilon;
  record.psi_name = psi_name;
  record.summary = summary;
  RecordRun(record);
  return summary;
}

/// Convenience: the Non-monotonic Counter with the given options (seed is
/// offset per trial). Under --legacy_pump the sampler is forced to
/// kLegacyCoins so the whole run replays the pre-batching per-coin
/// execution.
inline std::function<std::unique_ptr<sim::Protocol>(int)> CounterFactory(
    int num_sites, core::CounterOptions options) {
  if (BenchLegacyPump()) options.sampler = common::SamplerMode::kLegacyCoins;
  return [num_sites, options](int trial) {
    core::CounterOptions per_trial = options;
    per_trial.seed = options.seed + static_cast<uint64_t>(trial) * 7919;
    return std::make_unique<core::NonMonotonicCounter>(num_sites, per_trial);
  };
}

/// Convenience: the HYZ monotonic counter with the given options (seed is
/// offset per trial; sampler forced to kLegacyCoins under --legacy_pump,
/// mirroring CounterFactory).
inline std::function<std::unique_ptr<sim::Protocol>(int)> HyzFactory(
    int num_sites, hyz::HyzOptions options) {
  if (BenchLegacyPump()) options.sampler = common::SamplerMode::kLegacyCoins;
  return [num_sites, options](int trial) {
    hyz::HyzOptions per_trial = options;
    per_trial.seed = options.seed + static_cast<uint64_t>(trial);
    return std::make_unique<hyz::HyzProtocol>(num_sites, per_trial);
  };
}

/// Prints the standard experiment banner.
inline void Banner(const std::string& experiment, const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Paper claim: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

/// Prints a fitted power-law line: "fit: y ~ x^p (r2=..)".
inline void PrintFit(const std::string& what, const std::vector<double>& xs,
                     const std::vector<double>& ys) {
  const auto fit = common::FitPowerLaw(xs, ys);
  std::printf("fit: %s ~ x^%.3f  (r2 = %.3f)\n", what.c_str(), fit.slope,
              fit.r2);
}

}  // namespace nmc::bench

