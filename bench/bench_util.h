#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/runner.h"
#include "common/statistics.h"
#include "core/nonmonotonic_counter.h"
#include "hyz/hyz_counter.h"
#include "registry/builtin.h"
#include "sim/assignment.h"
#include "sim/harness.h"
#include "sim/registry.h"

namespace nmc::bench {

/// Runs `trials` independent tracked runs; `make_stream` and
/// `make_protocol` receive the trial index so each trial can reseed.
///
/// Trials fan out across the session's worker pool (see InitBench /
/// --threads; 1 = serial). Aggregates are bit-identical regardless of the
/// thread count, and each batch is recorded into the session's JSON report
/// when --json_out is set.
inline RunSummary Repeat(
    int trials, int num_sites, double epsilon,
    const std::function<std::vector<double>(int)>& make_stream,
    const std::function<std::unique_ptr<sim::Protocol>(int)>& make_protocol,
    const std::string& psi_name = "round_robin") {
  RepeatSpec spec;
  spec.trials = trials;
  spec.num_sites = num_sites;
  spec.epsilon = epsilon;
  spec.psi_name = psi_name;
  spec.batch_size = BenchBatch();
  spec.legacy_pump = BenchLegacyPump();
  spec.make_stream = make_stream;
  spec.make_protocol = make_protocol;
  const RunSummary summary = RunRepeated(spec, BenchThreads());

  RunRecord record;
  record.label = NextRunLabel();
  record.trials = trials;
  record.num_sites = num_sites;
  record.epsilon = epsilon;
  record.psi_name = psi_name;
  record.summary = summary;
  RecordRun(record);
  return summary;
}

/// Convenience: the Non-monotonic Counter with the given options (seed is
/// offset per trial). Under --legacy_pump the sampler is forced to
/// kLegacyCoins so the whole run replays the pre-batching per-coin
/// execution. A faulty --channel=... session config overrides
/// options.channel (perfect stays whatever the caller set, i.e. the
/// default), with the channel seed offset per trial like the protocol
/// seed.
inline std::function<std::unique_ptr<sim::Protocol>(int)> CounterFactory(
    int num_sites, core::CounterOptions options) {
  if (BenchLegacyPump()) options.sampler = common::SamplerMode::kLegacyCoins;
  if (BenchChannel().faulty()) options.channel = BenchChannel();
  return [num_sites, options](int trial) {
    core::CounterOptions per_trial = options;
    per_trial.seed = options.seed + static_cast<uint64_t>(trial) * 7919;
    if (per_trial.channel.faulty()) {
      per_trial.channel.seed =
          options.channel.seed + static_cast<uint64_t>(trial) * 7919;
    }
    return std::make_unique<core::NonMonotonicCounter>(num_sites, per_trial);
  };
}

/// Convenience: the HYZ monotonic counter with the given options (seed is
/// offset per trial; sampler forced to kLegacyCoins under --legacy_pump,
/// channel handling mirroring CounterFactory).
inline std::function<std::unique_ptr<sim::Protocol>(int)> HyzFactory(
    int num_sites, hyz::HyzOptions options) {
  if (BenchLegacyPump()) options.sampler = common::SamplerMode::kLegacyCoins;
  if (BenchChannel().faulty()) options.channel = BenchChannel();
  return [num_sites, options](int trial) {
    hyz::HyzOptions per_trial = options;
    per_trial.seed = options.seed + static_cast<uint64_t>(trial);
    if (per_trial.channel.faulty()) {
      per_trial.channel.seed =
          options.channel.seed + static_cast<uint64_t>(trial);
    }
    return std::make_unique<hyz::HyzProtocol>(num_sites, per_trial);
  };
}

/// Convenience: a protocol built by name through sim::ProtocolRegistry
/// (builtins are registered on first use). Session-wide --legacy_pump and
/// a faulty --channel config fold into the params exactly as in
/// CounterFactory / HyzFactory. `seed_stride` is the per-trial seed
/// offset and mirrors whichever factory a call site replaces:
/// CounterFactory reseeds by 7919 per trial, HyzFactory by 1.
inline std::function<std::unique_ptr<sim::Protocol>(int)> RegistryFactory(
    const std::string& name, int num_sites, sim::ProtocolParams params = {},
    uint64_t seed_stride = 7919) {
  registry::RegisterBuiltinProtocols();
  if (BenchLegacyPump()) params.legacy_coins = true;
  if (BenchChannel().faulty()) params.channel = BenchChannel();
  return [name, num_sites, params, seed_stride](int trial) {
    sim::ProtocolParams per_trial = params;
    per_trial.seed = params.seed + static_cast<uint64_t>(trial) * seed_stride;
    if (per_trial.channel.faulty()) {
      per_trial.channel.seed =
          params.channel.seed + static_cast<uint64_t>(trial) * seed_stride;
    }
    return sim::ProtocolRegistry::Global().Create(name, num_sites, per_trial);
  };
}

/// Prints the standard experiment banner.
inline void Banner(const std::string& experiment, const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Paper claim: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

/// Prints a fitted power-law line: "fit: y ~ x^p (r2=..)".
inline void PrintFit(const std::string& what, const std::vector<double>& xs,
                     const std::vector<double>& ys) {
  const auto fit = common::FitPowerLaw(xs, ys);
  std::printf("fit: %s ~ x^%.3f  (r2 = %.3f)\n", what.c_str(), fit.slope,
              fit.r2);
}

}  // namespace nmc::bench

