#ifndef NMCOUNT_BENCH_BENCH_UTIL_H_
#define NMCOUNT_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/statistics.h"
#include "core/nonmonotonic_counter.h"
#include "sim/assignment.h"
#include "sim/harness.h"

namespace nmc::bench {

/// Aggregated outcome of repeated tracked runs (mean over trials).
struct RunSummary {
  double mean_messages = 0.0;
  double stderr_messages = 0.0;
  /// Fraction of steps violating the epsilon guarantee, averaged.
  double violation_fraction = 0.0;
  /// Number of trials with at least one violating step.
  int trials_with_violation = 0;
  double max_rel_error = 0.0;
  int trials = 0;
};

/// Runs `trials` independent tracked runs; `make_stream` and
/// `make_protocol` receive the trial index so each trial can reseed.
inline RunSummary Repeat(
    int trials, int num_sites, double epsilon,
    const std::function<std::vector<double>(int)>& make_stream,
    const std::function<std::unique_ptr<sim::Protocol>(int)>& make_protocol,
    const std::string& psi_name = "round_robin") {
  RunSummary summary;
  summary.trials = trials;
  common::RunningStat messages;
  for (int trial = 0; trial < trials; ++trial) {
    const auto stream = make_stream(trial);
    auto protocol = make_protocol(trial);
    auto psi = sim::MakeAssignment(psi_name, num_sites,
                                   1000 + static_cast<uint64_t>(trial));
    sim::TrackingOptions tracking;
    tracking.epsilon = epsilon;
    const auto result =
        sim::RunTracking(stream, psi.get(), protocol.get(), tracking);
    messages.Add(static_cast<double>(result.messages));
    summary.violation_fraction += static_cast<double>(result.violation_steps) /
                                  std::max<double>(1.0, static_cast<double>(result.n));
    if (result.any_violation()) ++summary.trials_with_violation;
    summary.max_rel_error = std::max(summary.max_rel_error, result.max_rel_error);
  }
  summary.mean_messages = messages.mean();
  summary.stderr_messages = messages.stderr_mean();
  summary.violation_fraction /= trials;
  return summary;
}

/// Convenience: the Non-monotonic Counter with the given options (seed is
/// offset per trial).
inline std::function<std::unique_ptr<sim::Protocol>(int)> CounterFactory(
    int num_sites, core::CounterOptions options) {
  return [num_sites, options](int trial) {
    core::CounterOptions per_trial = options;
    per_trial.seed = options.seed + static_cast<uint64_t>(trial) * 7919;
    return std::make_unique<core::NonMonotonicCounter>(num_sites, per_trial);
  };
}

/// Prints the standard experiment banner.
inline void Banner(const std::string& experiment, const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Paper claim: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

/// Prints a fitted power-law line: "fit: y ~ x^p (r2=..)".
inline void PrintFit(const std::string& what, const std::vector<double>& xs,
                     const std::vector<double>& ys) {
  const auto fit = common::FitPowerLaw(xs, ys);
  std::printf("fit: %s ~ x^%.3f  (r2 = %.3f)\n", what.c_str(), fit.slope,
              fit.r2);
}

}  // namespace nmc::bench

#endif  // NMCOUNT_BENCH_BENCH_UTIL_H_
