// E8 — Section 1.1 and Arackaparambil et al.: fully adversarial ORDER
// forces Omega(n) messages (the alternating ±1 stream keeps the count on
// {0, 1}, so a single missed update is an unbounded relative error), while
// the SAME multiset in random order costs Õ(sqrt(n)). This harness runs
// the counter on both orders, on a sawtooth variant, and against the
// baselines, reporting the cost per update.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/table.h"
#include "streams/adversarial.h"
#include "streams/permutation.h"

namespace {

using nmc::bench::Banner;
using nmc::bench::CounterFactory;
using nmc::bench::RegistryFactory;
using nmc::bench::Repeat;
using nmc::common::Format;

void OrderedVsPermuted() {
  std::printf("\n-- alternating multiset: adversarial order vs permuted "
              "(k = 1, eps = 0.25) --\n");
  nmc::common::Table table(
      {"n", "ordered_msgs", "permuted_msgs", "ordered/n", "permuted/n",
       "speedup"});
  for (int64_t n = 1 << 16; n <= (1 << 20); n <<= 2) {
    nmc::core::CounterOptions options;
    options.epsilon = 0.25;
    options.horizon_n = n;
    options.seed = 31;
    const auto ordered = Repeat(
        1, 1, 0.25,
        [n](int) { return nmc::streams::AlternatingStream(n); },
        CounterFactory(1, options));
    const auto permuted = Repeat(
        3, 1, 0.25,
        [n](int trial) {
          return nmc::streams::RandomlyPermuted(
              nmc::streams::AlternatingStream(n),
              1100 + static_cast<uint64_t>(trial));
        },
        CounterFactory(1, options));
    table.AddRow({Format(n), Format(ordered.mean_messages, 0),
                  Format(permuted.mean_messages, 0),
                  Format(ordered.mean_messages / static_cast<double>(n), 3),
                  Format(permuted.mean_messages / static_cast<double>(n), 3),
                  Format(ordered.mean_messages / permuted.mean_messages, 2)});
  }
  table.Print();
  std::printf("theory: ordered cost is pinned at ~1 msg/update (matching the\n"
              "Omega(n) bound — the counter samples at rate 1 inside |S|<=1);\n"
              "the permuted cost is sublinear, so the speedup grows ~sqrt(n)\n");
}

void SawtoothAmplitude() {
  std::printf("\n-- sawtooth order: cost vs swing amplitude (n = 2^18) --\n");
  const int64_t n = 1 << 18;
  nmc::common::Table table({"peak", "messages", "msgs/n", "violations"});
  for (int64_t peak : {1, 4, 16, 64, 256, 1024}) {
    nmc::core::CounterOptions options;
    options.epsilon = 0.25;
    options.horizon_n = n;
    options.seed = 33;
    const auto summary = Repeat(
        1, 1, 0.25,
        [n, peak](int) { return nmc::streams::SawtoothStream(n, peak); },
        CounterFactory(1, options));
    table.AddRow({Format(peak), Format(summary.mean_messages, 0),
                  Format(summary.mean_messages / static_cast<double>(n), 3),
                  Format(static_cast<int64_t>(summary.trials_with_violation))});
  }
  table.Print();
  std::printf("theory: adversarial order is only expensive because of time\n"
              "spent near zero: larger swings leave the rate-1 region and\n"
              "the per-update cost falls accordingly\n");
}

void BaselineComparison() {
  std::printf("\n-- protocols on the ordered alternating stream (n = 2^16, "
              "k = 2) --\n");
  const int64_t n = 1 << 16;
  const int k = 2;
  const auto stream_factory = [n](int) {
    return nmc::streams::AlternatingStream(n);
  };
  nmc::common::Table table({"protocol", "messages", "violating_trials",
                            "note"});
  {
    nmc::core::CounterOptions options;
    options.epsilon = 0.25;
    options.horizon_n = n;
    options.seed = 35;
    const auto r = Repeat(1, k, 0.25, stream_factory,
                          CounterFactory(k, options));
    table.AddRow({"nonmonotonic_counter", Format(r.mean_messages, 0),
                  Format(static_cast<int64_t>(r.trials_with_violation)),
                  "correct; ~2/update (straight stage)"});
  }
  {
    const auto r =
        Repeat(1, k, 0.25, stream_factory, RegistryFactory("exact_sync", k));
    table.AddRow({"exact_sync", Format(r.mean_messages, 0),
                  Format(static_cast<int64_t>(r.trials_with_violation)),
                  "correct; 1/update"});
  }
  for (int64_t period : {2, 16}) {
    nmc::sim::ProtocolParams params;
    params.period = period;
    const auto r = Repeat(1, k, 0.25, stream_factory,
                          RegistryFactory("periodic_sync", k, params));
    table.AddRow({"periodic_sync(T=" + std::to_string(period) + ")",
                  Format(r.mean_messages, 0),
                  Format(static_cast<int64_t>(r.trials_with_violation)),
                  "cheap but WRONG between syncs"});
  }
  table.Print();
  std::printf("theory: on worst-case order nothing beats Theta(n) while\n"
              "staying correct — cheaper baselines violate the guarantee\n");
}

}  // namespace

int main(int argc, char** argv) {
  nmc::bench::InitBench(argc, argv, "bench_e8_adversarial");
  Banner("E8 — the Omega(n) adversarial-order barrier vs random order",
         "worst-case order costs Omega(n); the permuted multiset is Õ(sqrt(n))");
  OrderedVsPermuted();
  SawtoothAmplitude();
  BaselineComparison();
  return nmc::bench::FinishBench();
}
