#!/usr/bin/env python3
"""Turn the bench harness output into figures.

Usage:
    for b in build/bench/*; do $b; done | tee bench_output.txt
    python3 scripts/plot_experiments.py bench_output.txt --out figures/

The bench binaries print aligned ASCII tables under `-- section --`
headers. This script parses every table and, for tables with a leading
numeric sweep column (n, k, mu, eps, H, ...), emits a log-log plot of each
numeric column against it. Requires matplotlib; degrades to CSV dumps when
it is unavailable.
"""

import argparse
import os
import re
import sys


def parse_tables(lines):
    """Yields (title, headers, rows) for every table in the output."""
    title = "untitled"
    i = 0
    while i < len(lines):
        line = lines[i].rstrip("\n")
        section = re.match(r"^-- (.*) --$", line.strip())
        if section:
            title = section.group(1)
            i += 1
            continue
        # A table is a header row followed by a dashed rule.
        if i + 1 < len(lines) and re.match(r"^[-\s]+$", lines[i + 1]) and \
           "-" in lines[i + 1]:
            headers = line.split()
            rows = []
            i += 2
            while i < len(lines) and lines[i].strip() and \
                    not lines[i].startswith(("fit:", "theory:", "takeaway:")):
                cells = lines[i].split()
                if len(cells) == len(headers):
                    rows.append(cells)
                i += 1
            if rows:
                yield title, headers, rows
            continue
        i += 1


def to_float(cell):
    try:
        return float(cell)
    except ValueError:
        return None


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("input", help="captured bench output")
    parser.add_argument("--out", default="figures", help="output directory")
    args = parser.parse_args()

    with open(args.input) as f:
        lines = f.readlines()
    os.makedirs(args.out, exist_ok=True)

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
        have_mpl = True
    except ImportError:
        have_mpl = False
        print("matplotlib not available; writing CSVs only", file=sys.stderr)

    for index, (title, headers, rows) in enumerate(parse_tables(lines)):
        slug = re.sub(r"[^a-z0-9]+", "_", title.lower()).strip("_")[:60]
        base = os.path.join(args.out, f"{index:02d}_{slug}")
        with open(base + ".csv", "w") as f:
            f.write(",".join(headers) + "\n")
            for row in rows:
                f.write(",".join(row) + "\n")

        if not have_mpl:
            continue
        xs = [to_float(row[0]) for row in rows]
        if any(x is None for x in xs) or len(xs) < 2:
            continue
        fig, ax = plt.subplots(figsize=(5, 3.5))
        for col in range(1, len(headers)):
            ys = [to_float(row[col]) for row in rows]
            if any(y is None for y in ys):
                continue
            if all(y > 0 for y in ys) and all(x > 0 for x in xs):
                ax.loglog(xs, ys, marker="o", label=headers[col])
            else:
                ax.plot(xs, ys, marker="o", label=headers[col])
        ax.set_xlabel(headers[0])
        ax.set_title(title, fontsize=9)
        ax.legend(fontsize=7)
        ax.grid(True, which="both", alpha=0.3)
        fig.tight_layout()
        fig.savefig(base + ".png", dpi=150)
        plt.close(fig)
        print(f"wrote {base}.png")


if __name__ == "__main__":
    main()
