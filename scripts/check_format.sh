#!/usr/bin/env bash
# Check-only clang-format gate over src/ bench/ tests/ tools/ examples/.
# Never rewrites files — prints a unified diff of what clang-format would
# change and fails if any file differs.
#
# Usage: scripts/check_format.sh [files...]
#   With no arguments, checks every tracked *.h/*.cc/*.cpp under
#   src/ bench/ tests/ tools/ examples/ (lint fixtures under testdata/
#   excluded — they are deliberately pathological).
#
# Exit codes:
#   0  all files clean, or clang-format not installed (prints SKIP so a
#      missing tool never masquerades as a formatting failure in CI logs)
#   1  at least one file would be reformatted (diff printed)
#   2  usage / environment error

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${REPO_ROOT}"

if ! command -v clang-format > /dev/null 2>&1; then
  echo "check_format: SKIP (clang-format not installed)" >&2
  exit 0
fi

if [[ $# -gt 0 ]]; then
  files=("$@")
else
  mapfile -t files < <(git ls-files 'src/**' 'bench/**' 'tests/**' \
                           'tools/**' 'examples/**' \
                       | grep -E '\.(h|cc|cpp|hpp)$' \
                       | grep -v '/testdata/')
fi
if [[ ${#files[@]} -eq 0 ]]; then
  echo "check_format: no files to check" >&2
  exit 2
fi

status=0
for file in "${files[@]}"; do
  if ! diff -u --label "${file} (tracked)" --label "${file} (formatted)" \
       "${file}" <(clang-format --style=file "${file}"); then
    status=1
  fi
done

if [[ ${status} -eq 0 ]]; then
  echo "check_format: ${#files[@]} files clean"
else
  echo "check_format: formatting differences found (see diff above)" >&2
fi
exit "${status}"
