#!/usr/bin/env bash
# The repo's static-analysis gate, in one entry point:
#
#   1. nmc_lint        — determinism/hygiene invariants (tools/nmc_lint);
#                        also writes build/nmc_lint.sarif (SARIF 2.1.0) for
#                        CI artifact upload and code-scanning viewers
#   2. clang-format    — check-only, via scripts/check_format.sh
#   3. clang-tidy      — curated .clang-tidy over every built TU
#   4. -Werror build   — strengthened warning set (NMC_WERROR=ON)
#   5. sanitizer matrix — full ctest under address, undefined, thread
#
# Usage: scripts/run_static_analysis.sh [--skip-sanitizers] [--jobs=N]
#   --skip-sanitizers  stop after stage 4 (the three sanitizer builds are
#                      the expensive part; CI runs them as separate jobs)
#   --jobs=N           parallel build/test jobs (default: nproc)
#
# Stages that need a missing tool (clang-format, clang-tidy) are SKIPPED
# with a note — a missing binary is an environment property, not a lint
# failure. Everything else is a hard gate.
#
# Exit codes (first failing stage wins):
#   0  every stage passed or was skipped for a missing tool
#   1  nmc_lint findings
#   2  usage error / build of the lint tool itself failed
#   3  clang-format differences
#   4  clang-tidy findings
#   5  -Werror build failed (new warnings)
#   6  a sanitizer build or its ctest run failed
#   7  the SARIF emission pass failed (text pass was clean — an emitter or
#      baseline inconsistency, not a new lint finding)
#   8  the full-repo lint took longer than the 30 s budget — the
#      interprocedural pass is meant to be cheap enough to run on every
#      commit; a blowup here is a performance regression in the linter
#   9  the nmc_race model-check gate failed: a litmus test found a
#      reachable violation / lost a pinned outcome, the exploration
#      budget ran out, or a weakened memory order survived the mutation
#      matrix (the failing run prints a `repro:` replay command)

set -uo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${REPO_ROOT}"

JOBS="$(nproc)"
SKIP_SANITIZERS=0
for arg in "$@"; do
  case "${arg}" in
    --skip-sanitizers) SKIP_SANITIZERS=1 ;;
    --jobs=*) JOBS="${arg#--jobs=}" ;;
    *) echo "unknown argument: ${arg}" >&2; exit 2 ;;
  esac
done

echo "== stage 1: nmc_lint =="
cmake -B build -S . > /dev/null || exit 2
cmake --build build -j "${JOBS}" --target nmc_lint > /dev/null || exit 2
# SARIF first, so the artifact exists even when the gate below fails and
# CI can upload the findings. Exit 1 here just means findings (the text
# pass below gates on them); >= 2 means the emitter or its inputs are
# broken, which is its own failure class.
./build/tools/nmc_lint/nmc_lint --root="${REPO_ROOT}" \
    --compile-commands=build/compile_commands.json \
    --format=sarif > build/nmc_lint.sarif
sarif_rc=$?
[[ "${sarif_rc}" -ge 2 ]] && exit 7
echo "SARIF log: build/nmc_lint.sarif"

# The gating text pass also exports the resolved cross-TU call graph
# (build/nmc_call_graph.dot, a CI artifact) and runs under a wall-clock
# budget: the interprocedural pass must stay fast enough for pre-commit.
LINT_BUDGET_SECONDS=30
lint_start="$(date +%s)"
./build/tools/nmc_lint/nmc_lint --root="${REPO_ROOT}" \
    --compile-commands=build/compile_commands.json \
    --dot=build/nmc_call_graph.dot || exit 1
lint_elapsed="$(( $(date +%s) - lint_start ))"
echo "call graph: build/nmc_call_graph.dot (lint took ${lint_elapsed}s)"
if [[ "${lint_elapsed}" -gt "${LINT_BUDGET_SECONDS}" ]]; then
  echo "nmc_lint: full-repo lint took ${lint_elapsed}s" \
       "(budget ${LINT_BUDGET_SECONDS}s)" >&2
  exit 8
fi

echo "== stage 1b: nmc_race (deterministic model check) =="
# The litmus suite pins exact outcome sets over the lock-free primitives;
# the mutation matrix weakens every named memory order in turn and
# requires a replay-confirmed kill. Both are exhaustive, bounded searches
# — deterministic, so a failure here always comes with a replayable
# schedule (DESIGN.md §13).
cmake --build build -j "${JOBS}" --target nmc_race > /dev/null || exit 2
./build/tools/nmc_race/nmc_race --test=all || exit 9
./build/tools/nmc_race/nmc_race --mutate=all || exit 9

echo "== stage 2: clang-format (check only) =="
scripts/check_format.sh || exit 3

echo "== stage 3: clang-tidy =="
if command -v clang-tidy > /dev/null 2>&1; then
  mapfile -t tus < <(git ls-files 'src/**' 'bench/**' 'tests/**' 'tools/**' \
                     | grep -E '\.(cc|cpp)$' | grep -v '/testdata/')
  if command -v run-clang-tidy > /dev/null 2>&1; then
    run-clang-tidy -p build -quiet "${tus[@]}" || exit 4
  else
    clang-tidy -p build --quiet "${tus[@]}" || exit 4
  fi
else
  echo "clang-tidy: SKIP (not installed)" >&2
fi

echo "== stage 4: -Werror build (strengthened warning set) =="
cmake -B build-werror -S . -DCMAKE_BUILD_TYPE=Release -DNMC_WERROR=ON \
    > /dev/null || exit 5
cmake --build build-werror -j "${JOBS}" || exit 5

if [[ "${SKIP_SANITIZERS}" -eq 1 ]]; then
  echo "== sanitizer matrix skipped (--skip-sanitizers) =="
  echo "static analysis: all enabled stages clean"
  exit 0
fi

echo "== stage 5: sanitizer matrix (full ctest) =="
for sanitizer in address undefined thread; do
  echo "-- NMC_SANITIZE=${sanitizer} --"
  case "${sanitizer}" in
    address) dir=build-asan ;;
    undefined) dir=build-ubsan ;;
    thread) dir=build-tsan ;;  # PR 1 naming
  esac
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DNMC_SANITIZE="${sanitizer}" > /dev/null || exit 6
  cmake --build "${dir}" -j "${JOBS}" > /dev/null || exit 6
  (cd "${dir}" && ctest --output-on-failure -j "${JOBS}") || exit 6
done

echo "static analysis: all stages clean"
exit 0
