#!/usr/bin/env bash
# Builds Release, runs the micro-benchmarks plus one fast tracked bench per
# family with --json_out, and aggregates everything into BENCH_baseline.json
# at the repo root — the machine-readable perf trajectory record.
#
# Usage: scripts/run_benches.sh [--threads=N] [--out=PATH]
#                                [--allow-regression] [--min-ratio=SPEC ...]
#   --threads=N         worker threads for the tracked benches (default: all
#                       cores)
#   --out=PATH          aggregate output path (default: BENCH_baseline.json)
#   --allow-regression  still diff against the committed baseline, but do
#                       not fail on slowdowns (use when refreshing the
#                       baseline on different hardware)
#   --min-ratio=SPEC    forwarded to compare_bench.py as --min_ratio=SPEC
#                       (repeatable; PATTERN=RATIO hard speedup gate that
#                       fails even under --allow-regression)
#
# Canonical speedup gates for optimization PRs (run against the
# *pre-change* baseline, not the refreshed one):
#   --min-ratio='BM_TrackingPumpLongGap/1=2.0'
#   --min-ratio='BM_BatchedPump/32=2.0'
# BM_BatchedPump/32 was originally gated at 3x; PR 6 measured its
# structural floor at ~2.1x (two mandatory per-item scans plus ~580
# protocol messages at the pinned batch size of 32), so the gate is 2x —
# a known-unreachable target is a gate nobody runs.
#
# Before writing the aggregate, the run is diffed against the committed
# BENCH_baseline.json via scripts/compare_bench.py; a >10% throughput
# regression on any shared metric fails the script.
#
# Also verifies the parallel runner and the threaded transport backend
# under ThreadSanitizer when the host toolchain supports it (build-tsan/:
# thread_pool_test, runner_test, spsc_queue_test, seqlock_test,
# threaded_runtime_test, plus a bench_e15 --transport=threads smoke).

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${REPO_ROOT}"

THREADS=0
OUT="BENCH_baseline.json"
COMPARE_FLAGS=()
for arg in "$@"; do
  case "${arg}" in
    --threads=*) THREADS="${arg#--threads=}" ;;
    --out=*) OUT="${arg#--out=}" ;;
    --allow-regression) COMPARE_FLAGS+=(--report-only) ;;
    --min-ratio=*) COMPARE_FLAGS+=(--min_ratio="${arg#--min-ratio=}") ;;
    *) echo "unknown argument: ${arg}" >&2; exit 2 ;;
  esac
done

BUILD_DIR=build
WORK_DIR="$(mktemp -d)"
trap 'rm -rf "${WORK_DIR}"' EXIT

echo "== building Release =="
cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build "${BUILD_DIR}" -j "$(nproc)" > /dev/null

echo "== micro benchmarks (simulator hot path) =="
"${BUILD_DIR}/bench/bench_micro" \
    --benchmark_out="${WORK_DIR}/micro.json" \
    --benchmark_out_format=json \
    --benchmark_filter='TrackingPump|NetworkPump|CounterUpdate|HyzUpdate|SkipSampler|BatchedPump|BatchRngFill'

# One fast representative per bench family: counter scaling (E2), the
# monotonic special case / HYZ family (E11), the adversarial-order family
# (E8), and fault injection (E14). Each writes its own BENCH_<name>.json
# alongside the table.
TRACKED_BENCHES=(bench_e2_multisite bench_e11_monotonic bench_e8_adversarial
                 bench_e14_fault_tolerance)
for bench in "${TRACKED_BENCHES[@]}"; do
  echo "== ${bench} (threads=${THREADS}) =="
  "${BUILD_DIR}/bench/${bench}" \
      --threads="${THREADS}" \
      --json_out="${WORK_DIR}/BENCH_${bench}.json"
done

# E15 exercises the threaded transport backend, so it takes --transport
# on top of the shared flags and runs outside the loop. Its reader-scaling
# and update-throughput metrics land in the same BENCH_*.json shape and the
# aggregation below picks the file up with the rest.
echo "== bench_e15_concurrent_serving (transport=threads) =="
"${BUILD_DIR}/bench/bench_e15_concurrent_serving" \
    --transport=threads \
    --json_out="${WORK_DIR}/BENCH_bench_e15_concurrent_serving.json"

echo "== aggregating =="
python3 - "${WORK_DIR}" "${WORK_DIR}/aggregate.json" <<'EOF'
import json
import sys
from pathlib import Path

work_dir, out_path = Path(sys.argv[1]), Path(sys.argv[2])

micro = json.loads((work_dir / "micro.json").read_text())
micro_rows = [
    {
        "name": b["name"],
        "items_per_second": b.get("items_per_second"),
        "real_time_ns": b["real_time"],
    }
    for b in micro["benchmarks"]
]

benches = []
for path in sorted(work_dir.glob("BENCH_bench_*.json")):
    benches.append(json.loads(path.read_text()))

aggregate = {
    "schema": "nmcount-bench-baseline-v1",
    "host": micro.get("context", {}).get("host_name", "unknown"),
    "num_cpus": micro.get("context", {}).get("num_cpus"),
    "micro": micro_rows,
    "benches": benches,
}
out_path.write_text(json.dumps(aggregate, indent=2) + "\n")
print(f"wrote {out_path} ({len(micro_rows)} micro rows, "
      f"{len(benches)} tracked benches)")
EOF

if [[ -f "BENCH_baseline.json" ]]; then
  echo "== comparing against committed BENCH_baseline.json =="
  python3 scripts/compare_bench.py "${COMPARE_FLAGS[@]}" \
      BENCH_baseline.json "${WORK_DIR}/aggregate.json"
else
  echo "== no committed BENCH_baseline.json; skipping comparison =="
fi

cp "${WORK_DIR}/aggregate.json" "${OUT}"
echo "wrote ${OUT}"

echo "== ThreadSanitizer: thread pool, runner, concurrent runtime =="
if cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DNMC_SANITIZE=thread > /dev/null 2>&1 \
   && cmake --build build-tsan -j "$(nproc)" \
        --target thread_pool_test runner_test spsc_queue_test seqlock_test \
        threaded_runtime_test bench_e15_concurrent_serving > /dev/null 2>&1; then
  ./build-tsan/tests/thread_pool_test
  ./build-tsan/tests/runner_test
  ./build-tsan/tests/spsc_queue_test
  ./build-tsan/tests/seqlock_test
  ./build-tsan/tests/threaded_runtime_test
  # End-to-end smoke of the threaded backend (k sites + m readers +
  # coordinator + linearizability replay) under TSan, sized to stay fast.
  ./build-tsan/bench/bench_e15_concurrent_serving \
      --transport=threads --sites=4 --readers=4 --updates=20000
  echo "TSan: clean"
else
  echo "TSan build unavailable on this toolchain; skipped" >&2
fi

echo "done."
