#!/usr/bin/env bash
# Fast pre-commit gate over the files staged for commit: nmc_lint's
# single-file rules plus the clang-format check. Install with
#
#   ln -s ../../scripts/pre-commit.sh .git/hooks/pre-commit
#
# or run it by hand before committing. The staged-file pass includes the
# atomics-discipline rules (ATOMIC_ORDER_EXPLICIT, SEQ_CST_JUSTIFIED,
# NO_RAW_ATOMIC_IN_RUNTIME), so an implicit-seq_cst atomic op or a raw
# std::atomic in the runtime layer is caught before the commit exists.
# The cross-file rules — layering,
# include cycles/depth, the interprocedural hot-path propagation, and the
# concurrency pack (NO_MUTABLE_GLOBAL_STATE, NO_STATIC_LOCAL_IN_REENTRANT,
# THREAD_COMPAT) — need the whole repo, so the hook follows the staged-file
# pass with a repo-mode run; the full-repo lint is sub-second, well inside
# the 30 s budget run_static_analysis.sh enforces.
#
# Exit codes: 0 = clean (or nothing staged), 1 = findings or format diffs,
#             2 = the lint tool would not build.

set -uo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${REPO_ROOT}"

mapfile -t staged < <(git diff --cached --name-only --diff-filter=ACMR \
                      | grep -E '\.(h|hpp|cc|cpp)$' | grep -v '/testdata/' \
                      || true)
if [[ "${#staged[@]}" -eq 0 ]]; then
  echo "pre-commit: no staged C++ files"
  exit 0
fi

cmake -B build -S . > /dev/null || exit 2
cmake --build build -j "$(nproc)" --target nmc_lint > /dev/null || exit 2

status=0
./build/tools/nmc_lint/nmc_lint --root="${REPO_ROOT}" "${staged[@]}" \
    || status=1
# Repo mode: the cross-TU rules (call-graph propagation, reentrancy audit,
# thread contracts, include graph) only exist over the whole tree.
./build/tools/nmc_lint/nmc_lint --root="${REPO_ROOT}" || status=1
scripts/check_format.sh "${staged[@]}" || status=1
exit "${status}"
