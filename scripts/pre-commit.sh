#!/usr/bin/env bash
# Fast pre-commit gate over the files staged for commit: nmc_lint's
# single-file rules plus the clang-format check. Install with
#
#   ln -s ../../scripts/pre-commit.sh .git/hooks/pre-commit
#
# or run it by hand before committing. The include-graph rules (layering,
# cycles, depth) need the whole repo and are left to `ctest -R nmc_lint` /
# scripts/run_static_analysis.sh; this hook is the seconds-fast subset.
#
# Exit codes: 0 = clean (or nothing staged), 1 = findings or format diffs,
#             2 = the lint tool would not build.

set -uo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${REPO_ROOT}"

mapfile -t staged < <(git diff --cached --name-only --diff-filter=ACMR \
                      | grep -E '\.(h|hpp|cc|cpp)$' | grep -v '/testdata/' \
                      || true)
if [[ "${#staged[@]}" -eq 0 ]]; then
  echo "pre-commit: no staged C++ files"
  exit 0
fi

cmake -B build -S . > /dev/null || exit 2
cmake --build build -j "$(nproc)" --target nmc_lint > /dev/null || exit 2

status=0
./build/tools/nmc_lint/nmc_lint --root="${REPO_ROOT}" "${staged[@]}" \
    || status=1
scripts/check_format.sh "${staged[@]}" || status=1
exit "${status}"
