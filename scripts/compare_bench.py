#!/usr/bin/env python3
"""Diff two benchmark JSON files and flag throughput regressions.

Usage:
    scripts/compare_bench.py BASELINE.json CANDIDATE.json
        [--threshold=PCT] [--report-only] [--min_ratio=PATTERN=RATIO ...]

Accepted input formats (either side, auto-detected, mixable):
  * the aggregate written by scripts/run_benches.sh
    (schema "nmcount-bench-baseline-v1"),
  * raw google-benchmark JSON (bench_micro --benchmark_out /
    --json_out),
  * a single BenchReport JSON from a tracked bench's --json_out.

Every metric is a throughput (higher is better):
  * micro rows  -> "micro/<name>" = items_per_second,
  * tracked benches -> "bench/<name>" = updates_per_sec,
  * named bench scalars -> "bench/<name>/<metric>" (the BenchReport
    "metrics" array — throughput-only benches report through these).
Metrics present on only one side are reported but never gate.

--min_ratio=PATTERN=RATIO (repeatable) is a hard speedup gate: every
shared metric whose name contains PATTERN must satisfy
candidate >= RATIO * baseline. Gate failures exit 1 even under
--report-only (the soft flag covers incidental regressions, not the
speedups a change exists to deliver); a PATTERN matching no shared
metric is a usage error (exit 2) so a renamed benchmark cannot silently
disarm its gate.

Exit codes: 0 = no regression beyond --threshold (default 10%) and all
--min_ratio gates met, 1 = at least one regression (suppressed by
--report-only) or missed gate (never suppressed), 2 = usage or
unreadable/undecodable input.
"""

import json
import sys
from pathlib import Path


def fail_usage(message):
    print(f"compare_bench: {message}", file=sys.stderr)
    print(__doc__.strip().splitlines()[2].strip(), file=sys.stderr)
    return 2


def load_json(path):
    try:
        return json.loads(Path(path).read_text())
    except OSError as err:
        raise ValueError(f"cannot read {path}: {err}") from err
    except json.JSONDecodeError as err:
        raise ValueError(f"{path} is not valid JSON: {err}") from err


def metrics_from_google_benchmark(doc):
    out = {}
    for row in doc.get("benchmarks", []):
        if row.get("run_type") == "aggregate":
            continue
        rate = row.get("items_per_second")
        if rate:
            out[f"micro/{row['name']}"] = float(rate)
    return out


def metrics_from_bench_report(doc):
    out = {}
    rate = doc.get("updates_per_sec")
    if rate:
        out[f"bench/{doc['bench']}"] = float(rate)
    # Throughput-only benches (e.g. bench_e15_concurrent_serving) report
    # named scalars in a "metrics" array instead of RunRecord batches.
    for metric in doc.get("metrics", []):
        value = metric.get("value")
        if value:
            out[f"bench/{doc['bench']}/{metric['name']}"] = float(value)
    return out


def metrics_from_aggregate(doc):
    out = {}
    for row in doc.get("micro", []):
        rate = row.get("items_per_second")
        if rate:
            out[f"micro/{row['name']}"] = float(rate)
    for bench in doc.get("benches", []):
        out.update(metrics_from_bench_report(bench))
    return out


def extract_metrics(doc, path):
    """Normalizes any accepted format into {metric_name: throughput}."""
    if isinstance(doc, dict):
        if doc.get("schema") == "nmcount-bench-baseline-v1":
            return metrics_from_aggregate(doc)
        if "benchmarks" in doc:
            return metrics_from_google_benchmark(doc)
        if "bench" in doc:
            return metrics_from_bench_report(doc)
    raise ValueError(f"{path}: unrecognized benchmark JSON shape")


def main(argv):
    threshold_pct = 10.0
    report_only = False
    min_ratios = []
    positional = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            try:
                threshold_pct = float(arg.split("=", 1)[1])
            except ValueError:
                return fail_usage(f"bad --threshold value in '{arg}'")
            if threshold_pct < 0:
                return fail_usage("--threshold must be >= 0")
        elif arg.startswith("--min_ratio="):
            spec = arg.split("=", 1)[1]
            pattern, sep, ratio_text = spec.rpartition("=")
            if not sep or not pattern:
                return fail_usage(
                    f"bad --min_ratio spec '{spec}' (want PATTERN=RATIO)")
            try:
                ratio = float(ratio_text)
            except ValueError:
                return fail_usage(f"bad --min_ratio ratio in '{spec}'")
            if ratio <= 0:
                return fail_usage("--min_ratio ratio must be > 0")
            min_ratios.append((pattern, ratio))
        elif arg == "--report-only":
            report_only = True
        elif arg.startswith("-"):
            return fail_usage(f"unknown flag {arg}")
        else:
            positional.append(arg)
    if len(positional) != 2:
        return fail_usage("expected exactly two JSON paths")

    try:
        baseline = extract_metrics(load_json(positional[0]), positional[0])
        candidate = extract_metrics(load_json(positional[1]), positional[1])
    except ValueError as err:
        print(f"compare_bench: {err}", file=sys.stderr)
        return 2
    if not baseline:
        print(f"compare_bench: no metrics in {positional[0]}", file=sys.stderr)
        return 2

    regressions = []
    shared = sorted(set(baseline) & set(candidate))
    width = max((len(name) for name in shared), default=10)
    print(f"{'metric':<{width}}  {'baseline':>14}  {'candidate':>14}  delta")
    for name in shared:
        old, new = baseline[name], candidate[name]
        delta_pct = (new - old) / old * 100.0
        marker = ""
        if delta_pct < -threshold_pct:
            marker = "  << REGRESSION"
            regressions.append((name, delta_pct))
        print(f"{name:<{width}}  {old:>14.3e}  {new:>14.3e}  "
              f"{delta_pct:+7.1f}%{marker}")
    for name in sorted(set(baseline) - set(candidate)):
        print(f"{name:<{width}}  {baseline[name]:>14.3e}  {'-':>14}  "
              "(missing from candidate)")
    for name in sorted(set(candidate) - set(baseline)):
        print(f"{name:<{width}}  {'-':>14}  {candidate[name]:>14.3e}  "
              "(new metric)")

    gate_failures = []
    for pattern, ratio in min_ratios:
        matched = [name for name in shared if pattern in name]
        if not matched:
            print(f"compare_bench: --min_ratio pattern '{pattern}' matches "
                  "no shared metric (renamed benchmark?)", file=sys.stderr)
            return 2
        for name in matched:
            achieved = candidate[name] / baseline[name]
            if achieved < ratio:
                gate_failures.append((name, ratio, achieved))

    if gate_failures:
        print(f"\n{len(gate_failures)} --min_ratio gate(s) missed "
              "(hard failure, not suppressed by --report-only):",
              file=sys.stderr)
        for name, ratio, achieved in gate_failures:
            print(f"  {name}: required >= {ratio:g}x baseline, "
                  f"achieved {achieved:.2f}x", file=sys.stderr)
    if regressions:
        print(f"\n{len(regressions)} metric(s) slower than baseline by more "
              f"than {threshold_pct:g}%:", file=sys.stderr)
        for name, delta_pct in regressions:
            print(f"  {name}: {delta_pct:+.1f}%", file=sys.stderr)
        if report_only and not gate_failures:
            print("(--report-only: not failing)", file=sys.stderr)
            return 0
    if gate_failures or (regressions and not report_only):
        return 1
    if not shared:
        print("note: no shared metrics between the two files")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
